// Property tests over randomly generated datatype trees.
//
// Generator: random nestings of contiguous / vector / hvector / subarray
// over random named types, with care to keep objects self-consistent
// (strides >= block spans, bounded total size). Properties:
//   P1  TEMPI translation succeeds and canonicalization reaches a fixed
//       point (idempotent).
//   P2  The canonical StridedBlock describes exactly the type's data:
//       size() == MPI_Type_size.
//   P3  TEMPI pack output == scalar reference pack (traversal order equals
//       sorted order for these nest-outward generators).
//   P4  TEMPI unpack(pack(x)) restores every byte the type covers.
//   P5  Baseline MPI_Pack agrees with the reference on host and device.
//   P6  Randomly chosen *equivalent pairs* (same object, different
//       construction) canonicalize to identical IR.
#include "interpose/table.hpp"
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/canonicalize.hpp"
#include "tempi/packer.hpp"
#include "tempi/translate.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::reference_pack;
using testing_helpers::SpaceBuffer;

struct Rng {
  std::mt19937 gen;
  explicit Rng(unsigned seed) : gen(seed) {}
  int uniform(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen);
  }
  bool chance(double p) {
    return std::uniform_real_distribution<double>(0, 1)(gen) < p;
  }
};

MPI_Datatype random_named(Rng &rng) {
  switch (rng.uniform(0, 3)) {
  case 0: return MPI_BYTE;
  case 1: return MPI_SHORT;
  case 2: return MPI_FLOAT;
  default: return MPI_DOUBLE;
  }
}

/// Build a random nested type from the strided constructor family.
/// Nest outward: each level wraps the previous with a gap-free-or-gapped
/// stride, so traversal order equals address order (P3 precondition).
MPI_Datatype random_strided_type(Rng &rng, int levels) {
  MPI_Datatype cur = random_named(rng);
  bool owned = false;
  for (int level = 0; level < levels; ++level) {
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(cur, &lb, &extent);
    MPI_Datatype next = nullptr;
    switch (rng.uniform(0, 3)) {
    case 0: {
      MPI_Type_contiguous(rng.uniform(1, 5), cur, &next);
      break;
    }
    case 1: {
      const int blocklen = rng.uniform(1, 4);
      const int stride = blocklen + rng.uniform(0, 3); // in elements
      MPI_Type_vector(rng.uniform(1, 5), blocklen, stride, cur, &next);
      break;
    }
    case 2: {
      const int blocklen = rng.uniform(1, 4);
      const MPI_Aint stride =
          extent * blocklen + rng.uniform(0, 2) * extent;
      MPI_Type_create_hvector(rng.uniform(1, 5), blocklen, stride, cur,
                              &next);
      break;
    }
    default: {
      const int sub = rng.uniform(1, 4);
      const int size = sub + rng.uniform(0, 3);
      const int start = rng.uniform(0, size - sub);
      const int sizes[1] = {size}, subsizes[1] = {sub}, starts[1] = {start};
      MPI_Type_create_subarray(1, sizes, subsizes, starts, MPI_ORDER_C, cur,
                               &next);
      break;
    }
    }
    if (owned) {
      MPI_Type_free(&cur);
    }
    cur = next;
    owned = true;
  }
  MPI_Type_commit(&cur);
  return cur;
}

class RandomTypeProperty : public ::testing::TestWithParam<unsigned> {
protected:
  void SetUp() override { sysmpi::ensure_self_context(); }
};

TEST_P(RandomTypeProperty, CanonicalizationIsIdempotent) {
  Rng rng(GetParam());
  MPI_Datatype t = random_strided_type(rng, rng.uniform(1, 4));
  auto ir = tempi::translate(t, interpose::system_table());
  ASSERT_TRUE(ir.has_value());
  tempi::simplify(*ir);
  tempi::Type again = *ir;
  tempi::simplify(again);
  EXPECT_EQ(again, *ir) << tempi::to_string(*ir);
  MPI_Type_free(&t);
}

TEST_P(RandomTypeProperty, StridedBlockSizeMatchesTypeSize) {
  Rng rng(GetParam() * 7919 + 13);
  MPI_Datatype t = random_strided_type(rng, rng.uniform(1, 4));
  auto ir = tempi::translate(t, interpose::system_table());
  ASSERT_TRUE(ir.has_value());
  tempi::simplify(*ir);
  const auto sb = tempi::to_strided_block(*ir);
  ASSERT_TRUE(sb.has_value()) << tempi::to_string(*ir);
  int size = 0;
  MPI_Type_size(t, &size);
  EXPECT_EQ(sb->size(), size) << tempi::to_string(*ir);
  MPI_Type_free(&t);
}

TEST_P(RandomTypeProperty, TempiPackMatchesReferenceAndRoundtrips) {
  Rng rng(GetParam() * 104729 + 7);
  MPI_Datatype t = random_strided_type(rng, rng.uniform(1, 4));
  auto ir = tempi::translate(t, interpose::system_table());
  ASSERT_TRUE(ir.has_value());
  tempi::simplify(*ir);
  const auto sb = tempi::to_strided_block(*ir);
  ASSERT_TRUE(sb.has_value());
  MPI_Aint lb = 0, extent = 0;
  int size = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  MPI_Type_size(t, &size);
  if (size == 0) {
    MPI_Type_free(&t);
    return;
  }
  const tempi::Packer packer(*sb, extent, size);

  const int count = rng.uniform(1, 3);
  const std::size_t span = static_cast<std::size_t>(extent) * count + 64;
  SpaceBuffer src(vcuda::MemorySpace::Device, span);
  SpaceBuffer back(vcuda::MemorySpace::Device, span);
  fill_pattern(src.get(), span, GetParam());
  std::memset(back.get(), 0, span);

  const auto expect = reference_pack(src.get(), count, *t);
  SpaceBuffer packed(vcuda::MemorySpace::Device, packer.packed_bytes(count));
  ASSERT_EQ(packer.pack(packed.get(), src.get(), count,
                        vcuda::default_stream()),
            vcuda::Error::Success);
  ASSERT_EQ(std::memcmp(packed.get(), expect.data(), expect.size()), 0)
      << tempi::to_string(*ir);

  ASSERT_EQ(packer.unpack(back.get(), packed.get(), count,
                          vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(reference_pack(back.get(), count, *t), expect);
  MPI_Type_free(&t);
}

TEST_P(RandomTypeProperty, BaselinePackMatchesReference) {
  Rng rng(GetParam() * 31337 + 3);
  MPI_Datatype t = random_strided_type(rng, rng.uniform(1, 3));
  MPI_Aint lb = 0, extent = 0;
  int size = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  MPI_Type_size(t, &size);
  if (size == 0) {
    MPI_Type_free(&t);
    return;
  }
  const auto space = rng.chance(0.5) ? vcuda::MemorySpace::Device
                                     : vcuda::MemorySpace::Pageable;
  SpaceBuffer src(space, static_cast<std::size_t>(extent) + 64);
  fill_pattern(src.get(), src.size(), GetParam() + 99);
  const auto expect = reference_pack(src.get(), 1, *t);
  SpaceBuffer out(space, expect.size());
  int position = 0;
  ASSERT_EQ(MPI_Pack(src.get(), 1, t, out.get(),
                     static_cast<int>(expect.size()), &position,
                     MPI_COMM_WORLD),
            MPI_SUCCESS);
  EXPECT_EQ(std::memcmp(out.get(), expect.data(), expect.size()), 0);
  MPI_Type_free(&t);
}

TEST_P(RandomTypeProperty, EquivalentConstructionsShareCanonicalForm) {
  // Build a random 2-D object, then describe it three ways: vector of
  // named, hvector of a contiguous row, and 2-D subarray. All must
  // canonicalize identically.
  Rng rng(GetParam() * 65537 + 1);
  const int elem = 4; // floats
  const int rowlen = rng.uniform(1, 64);                 // elements
  const int nrows = rng.uniform(1, 32);
  const int pitch_elems = rowlen + rng.uniform(1, 16);   // gapped rows

  MPI_Datatype as_vector = nullptr;
  MPI_Type_vector(nrows, rowlen, pitch_elems, MPI_FLOAT, &as_vector);

  MPI_Datatype row = nullptr, as_hvector = nullptr;
  MPI_Type_contiguous(rowlen, MPI_FLOAT, &row);
  MPI_Type_create_hvector(nrows, 1, static_cast<MPI_Aint>(pitch_elems) * elem,
                          row, &as_hvector);

  const int sizes[2] = {nrows, pitch_elems};
  const int subsizes[2] = {nrows, rowlen};
  const int starts[2] = {0, 0};
  MPI_Datatype as_subarray = nullptr;
  MPI_Type_create_subarray(2, sizes, subsizes, starts, MPI_ORDER_C,
                           MPI_FLOAT, &as_subarray);

  const auto canon = [](MPI_Datatype t) {
    auto ir = tempi::translate(t, interpose::system_table());
    EXPECT_TRUE(ir.has_value());
    tempi::simplify(*ir);
    return *ir;
  };
  const tempi::Type a = canon(as_vector);
  const tempi::Type b = canon(as_hvector);
  const tempi::Type c = canon(as_subarray);
  EXPECT_EQ(a, b) << tempi::to_string(a) << " vs " << tempi::to_string(b);
  EXPECT_EQ(a, c) << tempi::to_string(a) << " vs " << tempi::to_string(c);

  MPI_Type_free(&as_subarray);
  MPI_Type_free(&as_hvector);
  MPI_Type_free(&row);
  MPI_Type_free(&as_vector);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTypeProperty,
                         ::testing::Range(1u, 41u));

} // namespace
