// The Sec. 8 extension: generic blocklist packing for indexed/struct
// datatypes. Correctness against the reference oracle, device-metadata
// footprint (the Sec. 2 trade-off), interposer integration, and the
// default-off policy matching the paper's Summit deployment.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/blocklist_packer.hpp"
#include "tempi/tempi.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::reference_pack;
using testing_helpers::SpaceBuffer;

MPI_Datatype committed_indexed() {
  const int blens[4] = {2, 1, 3, 2};
  const int displs[4] = {0, 5, 9, 20};
  MPI_Datatype t = nullptr;
  MPI_Type_indexed(4, blens, displs, MPI_INT, &t);
  MPI_Type_commit(&t);
  return t;
}

MPI_Datatype committed_struct() {
  const int blens[3] = {2, 1, 4};
  const MPI_Aint displs[3] = {0, 24, 40};
  const MPI_Datatype types[3] = {MPI_DOUBLE, MPI_INT, MPI_FLOAT};
  MPI_Datatype t = nullptr;
  MPI_Type_create_struct(3, blens, displs, types, &t);
  MPI_Type_commit(&t);
  return t;
}

TEST(FlattenType, IndexedMatchesSysmpiBlocks) {
  MPI_Datatype t = committed_indexed();
  const auto blocks = tempi::flatten_type(t, interpose::system_table());
  ASSERT_TRUE(blocks.has_value());
  const auto &ref = t->flat_list().blocks;
  ASSERT_EQ(blocks->size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ((*blocks)[i].first, ref[i].offset) << i;
    EXPECT_EQ((*blocks)[i].second, ref[i].length) << i;
  }
  MPI_Type_free(&t);
}

TEST(FlattenType, StructAndNestedTypes) {
  MPI_Datatype s = committed_struct();
  const auto blocks = tempi::flatten_type(s, interpose::system_table());
  ASSERT_TRUE(blocks.has_value());
  EXPECT_EQ(blocks->size(), 3u); // three struct fields, runs merged inside
  MPI_Type_free(&s);

  // Vector of indexed: nesting across the strided/irregular boundary.
  MPI_Datatype idx = committed_indexed(), vec = nullptr;
  MPI_Type_vector(3, 1, 2, idx, &vec);
  MPI_Type_commit(&vec);
  const auto nested = tempi::flatten_type(vec, interpose::system_table());
  ASSERT_TRUE(nested.has_value());
  EXPECT_EQ(nested->size(), 3u * 4u);
  MPI_Type_free(&vec);
  MPI_Type_free(&idx);
}

TEST(BlockListPacker, PackMatchesReference) {
  MPI_Datatype t = committed_indexed();
  auto packer = tempi::BlockListPacker::create(t, interpose::system_table());
  ASSERT_NE(packer, nullptr);
  EXPECT_EQ(packer->block_count(), 4u);
  EXPECT_EQ(packer->type_size(), 8 * 4);

  SpaceBuffer src(vcuda::MemorySpace::Device, 26 * 4);
  fill_pattern(src.get(), src.size());
  const auto expect = reference_pack(src.get(), 1, *t);
  SpaceBuffer dst(vcuda::MemorySpace::Device, expect.size());
  ASSERT_EQ(packer->pack(dst.get(), src.get(), 1, vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(std::memcmp(dst.get(), expect.data(), expect.size()), 0);
  MPI_Type_free(&t);
}

TEST(BlockListPacker, UnpackInvertsPackMultiCount) {
  MPI_Datatype t = committed_struct();
  auto packer = tempi::BlockListPacker::create(t, interpose::system_table());
  ASSERT_NE(packer, nullptr);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);

  constexpr int kCount = 3;
  const std::size_t span = static_cast<std::size_t>(extent) * kCount + 32;
  SpaceBuffer src(vcuda::MemorySpace::Device, span);
  SpaceBuffer back(vcuda::MemorySpace::Device, span);
  fill_pattern(src.get(), span, 17);
  std::memset(back.get(), 0, span);

  SpaceBuffer mid(vcuda::MemorySpace::Device, packer->packed_bytes(kCount));
  ASSERT_EQ(packer->pack(mid.get(), src.get(), kCount,
                         vcuda::default_stream()),
            vcuda::Error::Success);
  ASSERT_EQ(packer->unpack(back.get(), mid.get(), kCount,
                           vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(reference_pack(back.get(), kCount, *t),
            reference_pack(src.get(), kCount, *t));
  MPI_Type_free(&t);
}

TEST(BlockListPacker, MetadataLivesInDeviceMemory) {
  // The Sec. 2 trade-off: ~16 B of device metadata per block.
  const std::size_t before =
      vcuda::memory_registry().bytes_in(vcuda::MemorySpace::Device);
  MPI_Datatype t = committed_indexed();
  auto packer = tempi::BlockListPacker::create(t, interpose::system_table());
  ASSERT_NE(packer, nullptr);
  EXPECT_EQ(packer->metadata_bytes(), 4u * 16u);
  EXPECT_GE(vcuda::memory_registry().bytes_in(vcuda::MemorySpace::Device),
            before + packer->metadata_bytes());
  packer.reset(); // metadata freed with the packer
  EXPECT_LT(vcuda::memory_registry().bytes_in(vcuda::MemorySpace::Device),
            before + 64);
  MPI_Type_free(&t);
}

class BlocklistInterposer : public ::testing::Test {
protected:
  void SetUp() override {
    tempi::install();
    sysmpi::ensure_self_context();
  }
  void TearDown() override {
    tempi::set_blocklist_fallback(false);
    tempi::uninstall();
  }
};

TEST_F(BlocklistInterposer, DisabledByDefaultMatchingThePaper) {
  EXPECT_FALSE(tempi::blocklist_fallback());
  MPI_Datatype t = committed_indexed();
  EXPECT_EQ(tempi::find_blocklist_packer(t), nullptr);
  MPI_Type_free(&t);
}

TEST_F(BlocklistInterposer, EnabledCommitBuildsBlocklistPacker) {
  tempi::set_blocklist_fallback(true);
  MPI_Datatype t = committed_indexed();
  EXPECT_EQ(tempi::find_packer(t), nullptr); // not strided
  EXPECT_NE(tempi::find_blocklist_packer(t), nullptr);
  MPI_Type_free(&t);
  EXPECT_EQ(tempi::find_blocklist_packer(t), nullptr); // evicted
}

TEST_F(BlocklistInterposer, StridedTypesStillPreferCanonicalPath) {
  tempi::set_blocklist_fallback(true);
  MPI_Datatype t = nullptr;
  MPI_Type_vector(8, 2, 4, MPI_INT, &t);
  MPI_Type_commit(&t);
  EXPECT_NE(tempi::find_packer(t), nullptr);
  EXPECT_EQ(tempi::find_blocklist_packer(t), nullptr);
  MPI_Type_free(&t);
}

TEST_F(BlocklistInterposer, PackOnDeviceIsSingleKernel) {
  tempi::set_blocklist_fallback(true);
  MPI_Datatype t = committed_indexed();
  SpaceBuffer src(vcuda::MemorySpace::Device, 26 * 4);
  SpaceBuffer out(vcuda::MemorySpace::Device, 8 * 4);
  fill_pattern(src.get(), src.size());
  vcuda::reset_counters();
  int position = 0;
  ASSERT_EQ(MPI_Pack(src.get(), 1, t, out.get(), 8 * 4, &position,
                     MPI_COMM_WORLD),
            MPI_SUCCESS);
  EXPECT_EQ(vcuda::counters().kernel_launches, 1u);
  const auto expect = reference_pack(src.get(), 1, *t);
  EXPECT_EQ(std::memcmp(out.get(), expect.data(), expect.size()), 0);
  MPI_Type_free(&t);
}

TEST_F(BlocklistInterposer, SendRecvRoundtripsIndexedGpuData) {
  tempi::set_blocklist_fallback(true);
  tempi::reset_send_stats();
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = committed_indexed();
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 16);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 23);
      MPI_Send(buf.get(), 1, t, 1, 0, MPI_COMM_WORLD);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 1,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      MPI_Recv(buf.get(), 1, t, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 1,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t));
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  EXPECT_EQ(tempi::send_stats().device, 1u); // blocklist ships via device
}

TEST_F(BlocklistInterposer, FasterThanBaselineForManyBlocks) {
  tempi::set_blocklist_fallback(true);
  // 512-block indexed type on the GPU: baseline walks every block through
  // the driver; blocklist uses one kernel.
  std::vector<int> blens(512, 1), displs(512);
  for (int i = 0; i < 512; ++i) {
    displs[static_cast<std::size_t>(i)] = 2 * i;
  }
  MPI_Datatype t = nullptr;
  MPI_Type_indexed(512, blens.data(), displs.data(), MPI_INT, &t);
  MPI_Type_commit(&t);

  SpaceBuffer src(vcuda::MemorySpace::Device, 1024 * 4);
  SpaceBuffer out(vcuda::MemorySpace::Device, 512 * 4);
  int position = 0;
  const vcuda::VirtualNs t0 = vcuda::virtual_now();
  ASSERT_EQ(MPI_Pack(src.get(), 1, t, out.get(), 512 * 4, &position,
                     MPI_COMM_WORLD),
            MPI_SUCCESS);
  const vcuda::VirtualNs accelerated = vcuda::virtual_now() - t0;
  MPI_Type_free(&t);

  tempi::set_blocklist_fallback(false);
  MPI_Datatype t2 = nullptr;
  MPI_Type_indexed(512, blens.data(), displs.data(), MPI_INT, &t2);
  MPI_Type_commit(&t2);
  position = 0;
  const vcuda::VirtualNs t1 = vcuda::virtual_now();
  ASSERT_EQ(MPI_Pack(src.get(), 1, t2, out.get(), 512 * 4, &position,
                     MPI_COMM_WORLD),
            MPI_SUCCESS);
  const vcuda::VirtualNs baseline = vcuda::virtual_now() - t1;
  MPI_Type_free(&t2);

  EXPECT_GT(baseline, 50 * accelerated);
}

} // namespace
