// Sec. 3.1 translation rules: MPI datatype -> Type IR, checked against the
// paper's stated correspondences (including the Fig. 2 constructions).
#include "interpose/table.hpp"
#include "sysmpi/mpi.hpp"
#include "tempi/translate.hpp"

#include <gtest/gtest.h>

namespace {

using tempi::DenseData;
using tempi::StreamData;
using tempi::Type;

const interpose::MpiTable &sys() { return interpose::system_table(); }

TEST(Translate, NamedTypeIsDense) {
  const auto ir = tempi::translate(MPI_FLOAT, sys());
  ASSERT_TRUE(ir.has_value());
  EXPECT_EQ(*ir, Type(DenseData{0, 4}));
}

TEST(Translate, ContiguousIsStreamOfDense) {
  // "An MPI contiguous type is a special case of StreamData where the
  // stride matches the size of the element. It is not DenseData as oldtype
  // may not be dense."
  MPI_Datatype t = nullptr;
  MPI_Type_contiguous(100, MPI_FLOAT, &t);
  const auto ir = tempi::translate(t, sys());
  ASSERT_TRUE(ir.has_value());
  EXPECT_EQ(*ir, Type(StreamData{0, 4, 100}, Type(DenseData{0, 4})));
  MPI_Type_free(&t);
}

TEST(Translate, VectorIsTwoNestedStreams) {
  // Parent: repeated blocks; child: elements within a block. Parent stride
  // = vector stride * child stride.
  MPI_Datatype t = nullptr;
  MPI_Type_vector(13, 100, 128, MPI_FLOAT, &t);
  const auto ir = tempi::translate(t, sys());
  ASSERT_TRUE(ir.has_value());
  const Type expect(StreamData{0, 128 * 4, 13},
                    Type(StreamData{0, 4, 100}, Type(DenseData{0, 4})));
  EXPECT_EQ(*ir, expect) << tempi::to_string(*ir);
  MPI_Type_free(&t);
}

TEST(Translate, HvectorStrideGivenInBytes) {
  MPI_Datatype t = nullptr;
  MPI_Type_create_hvector(13, 100, 512, MPI_FLOAT, &t);
  const auto ir = tempi::translate(t, sys());
  ASSERT_TRUE(ir.has_value());
  const Type expect(StreamData{0, 512, 13},
                    Type(StreamData{0, 4, 100}, Type(DenseData{0, 4})));
  EXPECT_EQ(*ir, expect) << tempi::to_string(*ir);
  MPI_Type_free(&t);
}

TEST(Translate, Subarray2DCOrder) {
  // 2D array of 128x64 floats (last dim contiguous under MPI_ORDER_C),
  // subarray 100x13 at offset (2,3) in (contiguous, strided) dims.
  const int sizes[2] = {64, 128};     // [slow, fast]
  const int subsizes[2] = {13, 100};
  const int starts[2] = {3, 2};
  MPI_Datatype t = nullptr;
  ASSERT_EQ(MPI_Type_create_subarray(2, sizes, subsizes, starts, MPI_ORDER_C,
                                     MPI_FLOAT, &t),
            MPI_SUCCESS);
  const auto ir = tempi::translate(t, sys());
  ASSERT_TRUE(ir.has_value());
  // Fast dim: stride 4, count 100, offset 2*4; slow dim: stride 128*4,
  // count 13, offset 3*512.
  const Type expect(
      StreamData{3 * 512, 512, 13},
      Type(StreamData{2 * 4, 4, 100}, Type(DenseData{0, 4})));
  EXPECT_EQ(*ir, expect) << tempi::to_string(*ir);
  MPI_Type_free(&t);
}

TEST(Translate, SubarrayFortranOrderMirrorsC) {
  const int csizes[2] = {64, 128}, csub[2] = {13, 100}, cstarts[2] = {3, 2};
  const int fsizes[2] = {128, 64}, fsub[2] = {100, 13}, fstarts[2] = {2, 3};
  MPI_Datatype ct = nullptr, ft = nullptr;
  ASSERT_EQ(MPI_Type_create_subarray(2, csizes, csub, cstarts, MPI_ORDER_C,
                                     MPI_FLOAT, &ct),
            MPI_SUCCESS);
  ASSERT_EQ(MPI_Type_create_subarray(2, fsizes, fsub, fstarts,
                                     MPI_ORDER_FORTRAN, MPI_FLOAT, &ft),
            MPI_SUCCESS);
  const auto cir = tempi::translate(ct, sys());
  const auto fir = tempi::translate(ft, sys());
  ASSERT_TRUE(cir.has_value());
  ASSERT_TRUE(fir.has_value());
  EXPECT_EQ(*cir, *fir);
  MPI_Type_free(&ct);
  MPI_Type_free(&ft);
}

TEST(Translate, HvectorOfVectorComposition) {
  // Fig. 2 middle construction: cuboid = hvector of (hvector of vector).
  MPI_Datatype row = nullptr, plane = nullptr;
  MPI_Type_vector(13, 100, 128, MPI_FLOAT, &row); // 2D plane already
  MPI_Type_create_hvector(47, 1, 256 * 512, row, &plane);
  const auto ir = tempi::translate(plane, sys());
  ASSERT_TRUE(ir.has_value());
  // Root: 47 planes at byte stride 256*512. Child: blocklen-1 stream.
  ASSERT_TRUE(ir->is_stream());
  EXPECT_EQ(ir->stream().count, 47);
  EXPECT_EQ(ir->stream().stride, 256 * 512);
  ASSERT_TRUE(ir->child().is_stream());
  EXPECT_EQ(ir->child().stream().count, 1); // hvector blocklength 1
  MPI_Type_free(&plane);
  MPI_Type_free(&row);
}

TEST(Translate, DupAndResizedPassThrough) {
  MPI_Datatype v = nullptr, d = nullptr, r = nullptr;
  MPI_Type_vector(5, 2, 8, MPI_INT, &v);
  MPI_Type_dup(v, &d);
  MPI_Type_create_resized(v, 0, 1024, &r);
  const auto virr = tempi::translate(v, sys());
  const auto dir = tempi::translate(d, sys());
  const auto rir = tempi::translate(r, sys());
  ASSERT_TRUE(virr && dir && rir);
  EXPECT_EQ(*virr, *dir);
  EXPECT_EQ(*virr, *rir);
  MPI_Type_free(&r);
  MPI_Type_free(&d);
  MPI_Type_free(&v);
}

TEST(Translate, IndexedIsUnsupported) {
  const int blens[2] = {1, 2};
  const int displs[2] = {0, 4};
  MPI_Datatype t = nullptr;
  MPI_Type_indexed(2, blens, displs, MPI_INT, &t);
  EXPECT_FALSE(tempi::translate(t, sys()).has_value());
  MPI_Type_free(&t);
}

TEST(Translate, StructIsUnsupported) {
  const int blens[1] = {2};
  const MPI_Aint displs[1] = {0};
  const MPI_Datatype types[1] = {MPI_INT};
  MPI_Datatype t = nullptr;
  MPI_Type_create_struct(1, blens, displs, types, &t);
  EXPECT_FALSE(tempi::translate(t, sys()).has_value());
  MPI_Type_free(&t);
}

TEST(Translate, NestedUnsupportedPoisonsParent) {
  const int blens[2] = {1, 2};
  const int displs[2] = {0, 4};
  MPI_Datatype idx = nullptr, vec = nullptr;
  MPI_Type_indexed(2, blens, displs, MPI_INT, &idx);
  MPI_Type_vector(3, 1, 2, idx, &vec);
  EXPECT_FALSE(tempi::translate(vec, sys()).has_value());
  MPI_Type_free(&vec);
  MPI_Type_free(&idx);
}

} // namespace
