// Shared helpers for the test suite: buffer fixtures in each virtual memory
// space, deterministic fill patterns, and a scalar reference packer used as
// the correctness oracle for every pack/unpack path.
#pragma once

#include "sysmpi/types.hpp"
#include "vcuda/runtime.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace testing_helpers {

/// RAII buffer in a chosen virtual memory space.
class SpaceBuffer {
public:
  SpaceBuffer(vcuda::MemorySpace space, std::size_t bytes)
      : space_(space), bytes_(bytes) {
    switch (space) {
    case vcuda::MemorySpace::Device:
      vcuda::Malloc(&ptr_, bytes);
      break;
    case vcuda::MemorySpace::Pinned:
      vcuda::MallocHost(&ptr_, bytes);
      break;
    case vcuda::MemorySpace::Pageable:
      ptr_ = ::operator new(bytes);
      break;
    }
  }
  ~SpaceBuffer() {
    switch (space_) {
    case vcuda::MemorySpace::Device:
      vcuda::Free(ptr_);
      break;
    case vcuda::MemorySpace::Pinned:
      vcuda::FreeHost(ptr_);
      break;
    case vcuda::MemorySpace::Pageable:
      ::operator delete(ptr_);
      break;
    }
  }
  SpaceBuffer(const SpaceBuffer &) = delete;
  SpaceBuffer &operator=(const SpaceBuffer &) = delete;

  [[nodiscard]] void *get() const { return ptr_; }
  [[nodiscard]] std::byte *bytes() const {
    return static_cast<std::byte *>(ptr_);
  }
  [[nodiscard]] std::size_t size() const { return bytes_; }

private:
  vcuda::MemorySpace space_;
  std::size_t bytes_ = 0;
  void *ptr_ = nullptr;
};

/// Deterministic, position-dependent fill so any misplaced byte is caught.
inline void fill_pattern(void *p, std::size_t n, std::uint32_t seed = 1) {
  auto *b = static_cast<unsigned char *>(p);
  std::uint32_t x = seed * 2654435761u + 12345u;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    b[i] = static_cast<unsigned char>(x >> 24);
  }
}

/// Scalar reference pack: walk the datatype's canonical traversal order
/// with plain byte copies. The oracle against which both the baseline
/// engine and TEMPI's kernels are checked.
inline std::vector<std::byte> reference_pack(const void *src, int count,
                                             const sysmpi::Datatype &dt) {
  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(dt.size) * count);
  const auto *base = static_cast<const std::byte *>(src);
  for (int i = 0; i < count; ++i) {
    const std::byte *elem = base + static_cast<long long>(i) * dt.extent;
    sysmpi::for_each_block(dt, 0, [&](long long off, long long len) {
      const std::byte *p = elem + off;
      out.insert(out.end(), p, p + len);
    });
  }
  return out;
}

/// Scalar reference unpack (inverse of reference_pack).
inline void reference_unpack(void *dst, int count, const sysmpi::Datatype &dt,
                             const std::vector<std::byte> &packed) {
  auto *base = static_cast<std::byte *>(dst);
  std::size_t pos = 0;
  for (int i = 0; i < count; ++i) {
    std::byte *elem = base + static_cast<long long>(i) * dt.extent;
    sysmpi::for_each_block(dt, 0, [&](long long off, long long len) {
      std::memcpy(elem + off, packed.data() + pos,
                  static_cast<std::size_t>(len));
      pos += static_cast<std::size_t>(len);
    });
  }
}

} // namespace testing_helpers
