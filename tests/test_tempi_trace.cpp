// The operation tracer + metrics registry (tempi/trace.hpp): span
// nesting/ordering across the async engine, ring-buffer wraparound drops,
// concurrent emits from plain threads, the Chrome trace-event export's
// structure, the disabled path's no-allocation guarantee, flush()
// idempotence, and the counter registry's equality with the legacy
// SendStats snapshot view.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/tempi.hpp"
#include "tempi/trace.hpp"
#include "vcuda/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

namespace trace = tempi::trace;

void run2(const std::function<void(int)> &body) {
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, body);
}

MPI_Datatype make_vec(int blocks, int block_bytes, int pitch_bytes) {
  MPI_Datatype t = nullptr;
  MPI_Type_vector(blocks, block_bytes, pitch_bytes, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  return t;
}

class TempiTrace : public ::testing::Test {
protected:
  void SetUp() override {
    tempi::install();
    tempi::reset_send_stats();
    trace::reset();
    trace::set_enabled(true);
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::set_trace_path("");
    trace::set_stats_requested(false);
    trace::set_default_ring_capacity(16384);
    trace::reset();
    tempi::uninstall();
  }
};

/// One 2-rank Isend/Irecv of a strided device object, completion via
/// MPI_Wait on both sides.
void isend_round() {
  run2([](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = make_vec(64, 64, 128);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    void *buf = nullptr;
    vcuda::Malloc(&buf, static_cast<std::size_t>(extent) + 64);
    MPI_Request req = nullptr;
    if (rank == 0) {
      MPI_Isend(buf, 1, t, 1, 5, MPI_COMM_WORLD, &req);
    } else {
      MPI_Irecv(buf, 1, t, 0, 5, MPI_COMM_WORLD, &req);
    }
    MPI_Wait(&req, MPI_STATUS_IGNORE);
    vcuda::Free(buf);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiTrace, SpanOrderingAcrossAsyncWait) {
  isend_round();
  const trace::Snapshot snap = tempi::trace_snapshot();
  ASSERT_FALSE(snap.spans.empty());
  for (const trace::SpanRecord &rec : snap.spans) {
    EXPECT_GE(rec.t1, rec.t0); // every span is a well-formed interval
  }
  // Sender: the pack must be issued before its wire leg begins. Receiver:
  // the wire leg must begin before the unpack ends. (Virtual clocks are
  // per-rank-thread, so ordering is only compared within one rank.)
  const auto first_t0 = [&snap](int rank, trace::Phase phase) {
    vcuda::VirtualNs best = ~vcuda::VirtualNs{0};
    for (const trace::SpanRecord &rec : snap.spans) {
      if (rec.rank == rank && rec.lane == 0 && rec.phase == phase) {
        best = std::min(best, rec.t0);
      }
    }
    return best;
  };
  const auto count_of = [&snap](int rank, trace::Phase phase,
                                trace::OpKind kind) {
    std::size_t n = 0;
    for (const trace::SpanRecord &rec : snap.spans) {
      if (rec.rank == rank && rec.phase == phase && rec.kind == kind) {
        ++n;
      }
    }
    return n;
  };
  ASSERT_GE(count_of(0, trace::Phase::PackLaunch, trace::OpKind::Isend), 1u);
  ASSERT_GE(count_of(0, trace::Phase::Wire, trace::OpKind::Isend), 1u);
  ASSERT_GE(count_of(1, trace::Phase::Wire, trace::OpKind::Irecv), 1u);
  ASSERT_GE(count_of(1, trace::Phase::Unpack, trace::OpKind::Irecv), 1u);
  EXPECT_LE(first_t0(0, trace::Phase::PackLaunch),
            first_t0(0, trace::Phase::Wire));
  EXPECT_LE(first_t0(1, trace::Phase::Wire),
            first_t0(1, trace::Phase::Unpack));
}

TEST_F(TempiTrace, WraparoundDropsCountedNotCrashed) {
  trace::set_default_ring_capacity(8);
  trace::reset(); // next armed emit creates a capacity-8 ring
  for (int i = 0; i < 100; ++i) {
    trace::emit(trace::Phase::Wire, trace::OpKind::Send, i, i + 1, 64);
  }
  const trace::Snapshot snap = tempi::trace_snapshot();
  EXPECT_EQ(snap.spans.size(), 8u); // drop-new: the first 8 are retained
  EXPECT_EQ(snap.dropped, 92u);
  EXPECT_EQ(snap.spans.front().t0, 0u);
}

TEST_F(TempiTrace, ConcurrentEmitFromPlainThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        trace::emit(trace::Phase::Unpack, trace::OpKind::Recv, i, i + 2, 32,
                    t);
      }
    });
  }
  for (std::thread &t : threads) {
    t.join();
  }
  const trace::Snapshot snap = tempi::trace_snapshot();
  EXPECT_EQ(snap.spans.size() + snap.dropped,
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.dropped, 0u); // default capacity holds 1000/thread
  EXPECT_EQ(trace::ring_count(), static_cast<std::size_t>(kThreads));
}

TEST_F(TempiTrace, ChromeTraceExportMatchesMinimalSchema) {
  isend_round();
  const std::string path =
      ::testing::TempDir() + "tempi_trace_schema.json";
  ASSERT_TRUE(trace::write_chrome_trace(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  // Balanced braces/brackets outside string literals.
  long braces = 0, bracks = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++braces;
    } else if (c == '}') {
      --braces;
    } else if (c == '[') {
      ++bracks;
    } else if (c == ']') {
      --bracks;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(bracks, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(bracks, 0);
  const auto count = [&s](const char *needle) {
    std::size_t n = 0;
    for (std::size_t pos = s.find(needle); pos != std::string::npos;
         pos = s.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"displayTimeUnit\""), std::string::npos);
  // One complete event per retained span, each with ts/dur, plus rank
  // process_name and lane thread_name metadata.
  const trace::Snapshot snap = tempi::trace_snapshot();
  EXPECT_EQ(count("\"ph\":\"X\""), snap.spans.size());
  EXPECT_EQ(count("\"dur\":"), snap.spans.size());
  EXPECT_EQ(count("\"ts\":"), snap.spans.size());
  EXPECT_GE(count("\"ph\":\"M\""), 2u);
  EXPECT_GE(count("\"name\":\"process_name\""), 2u); // one per rank
  std::remove(path.c_str());
}

TEST_F(TempiTrace, DisabledPathAllocatesNothing) {
  trace::set_enabled(false);
  trace::reset(); // drop rings created by SetUp-era emits (none) and arm off
  ASSERT_EQ(trace::ring_count(), 0u);
  for (int i = 0; i < 1000; ++i) {
    trace::emit(trace::Phase::Wire, trace::OpKind::Send, i, i + 1);
    trace::ScopedSpan span(trace::Phase::Unpack, trace::OpKind::Recv);
  }
  EXPECT_EQ(trace::ring_count(), 0u); // no ring, no record, no drop
  const trace::Snapshot snap = tempi::trace_snapshot();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_EQ(snap.dropped, 0u);
}

TEST_F(TempiTrace, FlushIsIdempotentPerGeneration) {
  const std::string path = ::testing::TempDir() + "tempi_trace_flush.json";
  trace::set_trace_path(path);
  trace::emit(trace::Phase::Wire, trace::OpKind::Send, 0, 10, 64);
  trace::flush();
  std::remove(path.c_str()); // a generation-unchanged flush must not rewrite
  trace::flush();
  std::ifstream second(path);
  EXPECT_FALSE(second.good());
  trace::emit(trace::Phase::Wire, trace::OpKind::Send, 10, 20, 64);
  trace::flush(); // new span -> new generation -> rewritten
  std::ifstream third(path);
  EXPECT_TRUE(third.good());
  std::remove(path.c_str());
}

TEST_F(TempiTrace, CounterRegistryMatchesSendStats) {
  // Drive every counter family: a blocking send round, an Isend/Irecv
  // round, and a persistent round.
  run2([](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = make_vec(64, 64, 128);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    void *buf = nullptr;
    vcuda::Malloc(&buf, static_cast<std::size_t>(extent) + 64);
    if (rank == 0) {
      MPI_Send(buf, 1, t, 1, 1, MPI_COMM_WORLD);
    } else {
      MPI_Recv(buf, 1, t, 0, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    MPI_Request req = nullptr;
    if (rank == 0) {
      MPI_Send_init(buf, 1, t, 1, 2, MPI_COMM_WORLD, &req);
    } else {
      MPI_Recv_init(buf, 1, t, 0, 2, MPI_COMM_WORLD, &req);
    }
    MPI_Start(&req);
    MPI_Wait(&req, MPI_STATUS_IGNORE);
    MPI_Request_free(&req);
    vcuda::Free(buf);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  isend_round();

  const tempi::SendStats s = tempi::send_stats();
  const auto reg = [](const char *name) {
    return trace::counter_value(name);
  };
  EXPECT_EQ(s.oneshot, reg("tempi.send.oneshot"));
  EXPECT_EQ(s.device, reg("tempi.send.device"));
  EXPECT_EQ(s.staged, reg("tempi.send.staged"));
  EXPECT_EQ(s.forwarded, reg("tempi.send.forwarded"));
  EXPECT_EQ(s.pipelined, reg("tempi.send.pipelined"));
  EXPECT_EQ(s.isend_oneshot, reg("tempi.isend.oneshot"));
  EXPECT_EQ(s.isend_device, reg("tempi.isend.device"));
  EXPECT_EQ(s.isend_staged, reg("tempi.isend.staged"));
  EXPECT_EQ(s.isend_forwarded, reg("tempi.isend.forwarded"));
  EXPECT_EQ(s.isend_pipelined, reg("tempi.isend.pipelined"));
  EXPECT_EQ(s.irecv_accelerated, reg("tempi.irecv.accelerated"));
  EXPECT_EQ(s.irecv_forwarded, reg("tempi.irecv.forwarded"));
  EXPECT_EQ(s.model_cache_hits, reg("tempi.model.cache_hits"));
  EXPECT_EQ(s.model_cache_misses, reg("tempi.model.cache_misses"));
  EXPECT_EQ(s.method_memo_hits, reg("tempi.model.memo_hits"));
  EXPECT_EQ(s.pipeline_chunks, reg("tempi.pipeline.chunks"));
  EXPECT_EQ(s.pipeline_over_ceiling_bytes,
            reg("tempi.pipeline.over_ceiling_bytes"));
  EXPECT_EQ(s.coll_alltoallv, reg("tempi.coll.alltoallv"));
  EXPECT_EQ(s.coll_neighbor, reg("tempi.coll.neighbor"));
  EXPECT_EQ(s.coll_fallback, reg("tempi.coll.fallback"));
  EXPECT_EQ(s.coll_peer_legs, reg("tempi.coll.peer_legs"));
  EXPECT_EQ(s.persistent_init, reg("tempi.persistent.inits"));
  EXPECT_EQ(s.persistent_start, reg("tempi.persistent.starts"));
  EXPECT_EQ(s.persistent_replay_hits, reg("tempi.persistent.replays"));
  EXPECT_EQ(s.persistent_graph_launches,
            reg("tempi.persistent.graph_launches"));
  EXPECT_EQ(s.persistent_forwarded, reg("tempi.persistent.forwarded"));

  // At least one family must have moved, or this test proves nothing.
  EXPECT_GT(s.oneshot + s.device + s.staged + s.pipelined + s.forwarded, 0u);
  EXPECT_GT(s.persistent_init, 0u);

  // The sorted registry snapshot exposes the same names.
  const auto all = trace::counter_snapshot();
  EXPECT_TRUE(std::is_sorted(
      all.begin(), all.end(),
      [](const auto &a, const auto &b) { return a.first < b.first; }));
  const auto has = [&all](const char *name) {
    return std::any_of(all.begin(), all.end(), [name](const auto &kv) {
      return kv.first == name;
    });
  };
  EXPECT_TRUE(has("tempi.send.oneshot"));
  EXPECT_TRUE(has("tempi.engine.isends"));
  EXPECT_TRUE(has("tempi.model.cache_hits")); // gauge, same namespace
}

TEST_F(TempiTrace, StatsReportPrintsCountersAndPhases) {
  isend_round();
  const std::string path = ::testing::TempDir() + "tempi_trace_stats.txt";
  std::FILE *f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  trace::print_stats_report(f);
  std::fclose(f);
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  EXPECT_NE(s.find("tempi.engine.isends"), std::string::npos);
  EXPECT_NE(s.find("PackLaunch"), std::string::npos);
  EXPECT_NE(s.find("Wire"), std::string::npos);
  std::remove(path.c_str());
}

} // namespace
