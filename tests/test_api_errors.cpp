// Error paths and misuse handling across the API surface: invalid
// arguments are diagnosed, not crashed on, and failed calls leave state
// intact (failure-injection counterpart to the happy-path suites).
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/tempi.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

namespace {

using testing_helpers::SpaceBuffer;

class ApiErrors : public ::testing::Test {
protected:
  void SetUp() override { sysmpi::ensure_self_context(); }
};

TEST_F(ApiErrors, TypeConstructorsRejectNulls) {
  EXPECT_EQ(MPI_Type_contiguous(4, MPI_INT, nullptr), MPI_ERR_ARG);
  EXPECT_EQ(MPI_Type_contiguous(-1, MPI_INT, nullptr), MPI_ERR_ARG);
  MPI_Datatype t = nullptr;
  EXPECT_EQ(MPI_Type_vector(-2, 1, 1, MPI_INT, &t), MPI_ERR_ARG);
  EXPECT_EQ(MPI_Type_contiguous(4, MPI_DATATYPE_NULL, &t), MPI_ERR_ARG);
}

TEST_F(ApiErrors, CommitNullRejected) {
  MPI_Datatype null_type = MPI_DATATYPE_NULL;
  EXPECT_EQ(MPI_Type_commit(&null_type), MPI_ERR_ARG);
  EXPECT_EQ(MPI_Type_commit(nullptr), MPI_ERR_ARG);
  EXPECT_EQ(MPI_Type_free(nullptr), MPI_ERR_ARG);
}

TEST_F(ApiErrors, SendToInvalidRankRejected) {
  const int v = 1;
  EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, 99, 0, MPI_COMM_WORLD), MPI_ERR_ARG);
  EXPECT_EQ(MPI_Send(&v, -1, MPI_INT, 0, 0, MPI_COMM_WORLD), MPI_ERR_ARG);
  EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, 0, 0, MPI_COMM_NULL), MPI_ERR_ARG);
}

TEST_F(ApiErrors, GetCountNeedsArguments) {
  MPI_Status status;
  int count = 0;
  EXPECT_EQ(MPI_Get_count(nullptr, MPI_INT, &count), MPI_ERR_ARG);
  EXPECT_EQ(MPI_Get_count(&status, MPI_INT, nullptr), MPI_ERR_ARG);
}

TEST_F(ApiErrors, EnvelopeRejectsNulls) {
  int a = 0, b = 0, c = 0;
  EXPECT_EQ(MPI_Type_get_envelope(MPI_INT, &a, &b, &c, nullptr), MPI_ERR_ARG);
  EXPECT_EQ(MPI_Type_get_envelope(MPI_DATATYPE_NULL, &a, &b, &c, &a),
            MPI_ERR_ARG);
}

TEST_F(ApiErrors, ContentsOnNamedTypeRejected) {
  int ints[4];
  EXPECT_EQ(MPI_Type_get_contents(MPI_FLOAT, 4, 0, 0, ints, nullptr, nullptr),
            MPI_ERR_TYPE);
}

TEST_F(ApiErrors, ContentsWithSmallArraysRejected) {
  MPI_Datatype t = nullptr;
  MPI_Type_vector(2, 3, 4, MPI_INT, &t);
  int one_int = 0;
  MPI_Datatype sub = nullptr;
  EXPECT_EQ(MPI_Type_get_contents(t, 1, 0, 1, &one_int, nullptr, &sub),
            MPI_ERR_ARG);
  MPI_Type_free(&t);
}

TEST_F(ApiErrors, UnpackBeyondInputRejected) {
  MPI_Datatype t = nullptr;
  MPI_Type_contiguous(8, MPI_INT, &t);
  MPI_Type_commit(&t);
  std::byte in[16];
  int out[8];
  int position = 0;
  EXPECT_EQ(MPI_Unpack(in, 16, &position, out, 1, t, MPI_COMM_WORLD),
            MPI_ERR_TRUNCATE);
  EXPECT_EQ(position, 0); // unchanged on failure
  MPI_Type_free(&t);
}

TEST_F(ApiErrors, PackSizeRejectsNegativeCount) {
  int size = 0;
  EXPECT_EQ(MPI_Pack_size(-1, MPI_INT, MPI_COMM_WORLD, &size), MPI_ERR_ARG);
}

TEST_F(ApiErrors, TempiPackOverflowRejectedWithInterposer) {
  tempi::ScopedInterposer guard;
  MPI_Datatype t = nullptr;
  MPI_Type_vector(64, 4, 8, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  SpaceBuffer src(vcuda::MemorySpace::Device, 64 * 8);
  SpaceBuffer out(vcuda::MemorySpace::Device, 64 * 4);
  int position = 0;
  // Out buffer declared smaller than one element.
  EXPECT_EQ(MPI_Pack(src.get(), 1, t, out.get(), 100, &position,
                     MPI_COMM_WORLD),
            MPI_ERR_TRUNCATE);
  EXPECT_EQ(position, 0);
  MPI_Type_free(&t);
}

TEST_F(ApiErrors, TempiRecvTruncationPropagates) {
  tempi::ScopedInterposer guard;
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  sysmpi::run_ranks(cfg, [](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype big = nullptr, small = nullptr;
    MPI_Type_vector(64, 4, 8, MPI_BYTE, &big);
    MPI_Type_vector(16, 4, 8, MPI_BYTE, &small);
    MPI_Type_commit(&big);
    MPI_Type_commit(&small);
    SpaceBuffer buf(vcuda::MemorySpace::Device, 64 * 8);
    if (rank == 0) {
      MPI_Send(buf.get(), 1, big, 1, 0, MPI_COMM_WORLD);
    } else {
      // Receiving a 256-byte payload into a 64-byte datatype fails.
      EXPECT_EQ(MPI_Recv(buf.get(), 1, small, 0, 0, MPI_COMM_WORLD,
                         MPI_STATUS_IGNORE),
                MPI_ERR_TRUNCATE);
    }
    MPI_Type_free(&big);
    MPI_Type_free(&small);
    MPI_Finalize();
  });
}

TEST_F(ApiErrors, WaitNullRequestIsNoop) {
  MPI_Request req = MPI_REQUEST_NULL;
  EXPECT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
  EXPECT_EQ(MPI_Waitall(0, nullptr, MPI_STATUSES_IGNORE), MPI_SUCCESS);
}

TEST_F(ApiErrors, SubarrayValidation) {
  MPI_Datatype t = nullptr;
  const int sizes[2] = {4, 4}, subsizes[2] = {5, 1}, starts[2] = {0, 0};
  EXPECT_EQ(MPI_Type_create_subarray(2, sizes, subsizes, starts, MPI_ORDER_C,
                                     MPI_INT, &t),
            MPI_ERR_ARG); // subsize > size
  const int neg_starts[2] = {-1, 0};
  const int ok_sub[2] = {2, 2};
  EXPECT_EQ(MPI_Type_create_subarray(2, sizes, ok_sub, neg_starts,
                                     MPI_ORDER_C, MPI_INT, &t),
            MPI_ERR_ARG);
  EXPECT_EQ(MPI_Type_create_subarray(2, sizes, ok_sub, starts, 12345,
                                     MPI_INT, &t),
            MPI_ERR_ARG); // bad order constant
}

TEST_F(ApiErrors, AllreduceRejectsDerivedTypes) {
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  sysmpi::run_ranks(cfg, [](int) {
    MPI_Datatype t = nullptr;
    MPI_Type_contiguous(2, MPI_INT, &t);
    MPI_Type_commit(&t);
    int a[2] = {1, 2}, b[2] = {0, 0};
    EXPECT_EQ(MPI_Allreduce(a, b, 1, t, MPI_SUM, MPI_COMM_WORLD),
              MPI_ERR_ARG);
    MPI_Type_free(&t);
  });
}

} // namespace
