// The topology layer (tempi/topology.*): node-bucketed leg scheduling
// with rank-salted rotation, the TEMPI_TOPO kill-switch, the brick/greedy
// reorder=1 remap (pure functions and end-to-end through the interposed
// MPI_Cart_create), and the identity fallback when no placement strictly
// reduces the modeled inter-node bytes.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/tempi.hpp"
#include "tempi/topology.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace {

namespace topo = tempi::topo;

void run_n(int n, int rpn, const std::function<void(int)> &body) {
  sysmpi::RunConfig cfg;
  cfg.ranks = n;
  cfg.ranks_per_node = rpn;
  sysmpi::run_ranks(cfg, body);
}

using Order = std::vector<std::size_t>;

TEST(TopoScheduleOrder, SelfThenIntraThenRotatedNodeBuckets) {
  // my_node=0 of 4 nodes, stagger=1: the rotation starts at node 2, so
  // the inter-node round-robin visits nodes 2, 3, 1.
  const std::vector<topo::Leg> legs = {
      {0, true},  // self
      {0, false}, // intra-node
      {1, false}, {1, false}, {2, false}, {3, false},
  };
  EXPECT_EQ(topo::schedule_order(legs, 0, 1, 4), (Order{0, 1, 4, 5, 2, 3}));
  // stagger=0 rotates from node 1 instead: same legs, different fan-out.
  EXPECT_EQ(topo::schedule_order(legs, 0, 0, 4), (Order{0, 1, 2, 4, 5, 3}));
}

TEST(TopoScheduleOrder, RoundRobinInterleavesRepeatedDestinations) {
  // Two legs to each of nodes 1 and 2 from node 0: consecutive legs must
  // alternate destinations instead of double-tapping one node, while legs
  // to the same node keep their relative (FIFO) order.
  const std::vector<topo::Leg> legs = {
      {1, false}, {1, false}, {2, false}, {2, false}};
  EXPECT_EQ(topo::schedule_order(legs, 0, 0, 3), (Order{0, 2, 1, 3}));
}

TEST(TopoSchedule, RankSaltedStaggerAndCounters) {
  // 4 ranks on 2 nodes, every rank fanning out to everyone in rank
  // order. The second rank of each node (stagger 1) reorders its legs;
  // the first rank's rotation happens to coincide with rank order.
  topo::set_enabled(true);
  topo::reset_topo_stats();
  std::vector<Order> orders(4);
  run_n(4, 2, [&](int rank) {
    std::vector<int> peers(4);
    for (int p = 0; p < 4; ++p) {
      peers[static_cast<std::size_t>(p)] = (rank + p) % 4;
    }
    orders[static_cast<std::size_t>(rank)] =
        topo::schedule(MPI_COMM_WORLD, peers);
  });
  EXPECT_EQ(orders[0], (Order{0, 1, 2, 3}));
  EXPECT_EQ(orders[1], (Order{0, 3, 1, 2})); // self, intra, then inter
  EXPECT_EQ(orders[2], (Order{0, 1, 2, 3}));
  EXPECT_EQ(orders[3], (Order{0, 3, 1, 2}));
  const topo::TopoStats stats = topo::topo_stats();
  EXPECT_EQ(stats.intra_node_legs, 8u); // self + one node-mate, per rank
  EXPECT_EQ(stats.staggered_legs, 6u);  // three displaced legs on 1 and 3
  EXPECT_EQ(stats.remaps, 0u);
}

TEST(TopoSchedule, KillSwitchReturnsIdentityOrder) {
  topo::set_enabled(false);
  run_n(4, 2, [](int rank) {
    std::vector<int> peers(4);
    for (int p = 0; p < 4; ++p) {
      peers[static_cast<std::size_t>(p)] = (rank + p) % 4;
    }
    const Order order = topo::schedule(MPI_COMM_WORLD, peers);
    ASSERT_EQ(order.size(), 4u);
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], i);
    }
  });
  topo::set_enabled(true);
}

TEST(TopoCartRemap, BrickPlacementStrictlyReducesInterNodeBytes) {
  // 8x8 periodic grid, 8 ranks per node: the identity placement is
  // row-major strips (every vertical edge crosses: 2 per cell = 128
  // directed unit-edges), the 2x4 brick trades half the vertical surface
  // for a short horizontal one (12 per node = 96).
  const std::vector<int> dims{8, 8};
  const std::vector<int> periods{1, 1};
  std::vector<int> node_of_rank(64);
  for (int r = 0; r < 64; ++r) {
    node_of_rank[static_cast<std::size_t>(r)] = r / 8;
  }
  const std::vector<topo::Edge> edges = topo::cart_edges(dims, periods);
  EXPECT_EQ(topo::inter_node_bytes(edges, node_of_rank), 128);

  const std::vector<int> perm = topo::cart_remap(dims, periods, node_of_rank);
  ASSERT_EQ(perm.size(), 64u);
  std::vector<int> seen(64, 0);
  for (const int v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 64);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (const int c : seen) {
    EXPECT_EQ(c, 1); // a permutation, not just an assignment
  }
  // Grid vertex perm[r] runs on old rank r's node.
  std::vector<int> node_of_vertex(64, -1);
  for (int r = 0; r < 64; ++r) {
    node_of_vertex[static_cast<std::size_t>(perm[static_cast<std::size_t>(
        r)])] = node_of_rank[static_cast<std::size_t>(r)];
  }
  EXPECT_EQ(topo::inter_node_bytes(edges, node_of_vertex), 96);
}

TEST(TopoCartRemap, NoStrictGainFallsBackToIdentity) {
  // 2x2 periodic with two ranks per node: every balanced pairing costs
  // the same 8 crossing edges, so no remap is offered...
  EXPECT_TRUE(topo::cart_remap({2, 2}, {1, 1}, {0, 0, 1, 1}).empty());
  // ...and a single node has nothing crossing to improve.
  EXPECT_TRUE(topo::cart_remap({2, 2}, {1, 1}, {0, 0, 0, 0}).empty());
}

class TempiTopology : public ::testing::Test {
protected:
  void SetUp() override {
    tempi::install();
    tempi::reset_send_stats();
    topo::set_enabled(true);
  }
  void TearDown() override {
    topo::set_enabled(true);
    tempi::uninstall();
  }
};

TEST_F(TempiTopology, CartCreateReorder0KeepsRanksInPlace) {
  run_n(8, 2, [](int rank) {
    MPI_Init(nullptr, nullptr);
    const int dims[2] = {2, 4};
    const int periods[2] = {1, 0};
    MPI_Comm cart = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Cart_create(MPI_COMM_WORLD, 2, dims, periods, 0, &cart),
              MPI_SUCCESS);
    int crank = -1;
    MPI_Comm_rank(cart, &crank);
    EXPECT_EQ(crank, rank); // reorder=0 must never move a rank
    int coords[2] = {-1, -1};
    ASSERT_EQ(MPI_Cart_coords(cart, crank, 2, coords), MPI_SUCCESS);
    EXPECT_EQ(coords[0], rank / 4); // row-major, last dimension fastest
    EXPECT_EQ(coords[1], rank % 4);
    int back = -1;
    ASSERT_EQ(MPI_Cart_rank(cart, coords, &back), MPI_SUCCESS);
    EXPECT_EQ(back, rank);
    int src = -2, dst = -2;
    // Width-2 periodic dimension: one step up and down land on the same
    // neighbor row.
    ASSERT_EQ(MPI_Cart_shift(cart, 0, 1, &src, &dst), MPI_SUCCESS);
    EXPECT_EQ(dst, (rank + 4) % 8);
    EXPECT_EQ(src, (rank + 4) % 8);
    // Non-periodic dimension: off the edge is MPI_PROC_NULL.
    ASSERT_EQ(MPI_Cart_shift(cart, 1, 1, &src, &dst), MPI_SUCCESS);
    EXPECT_EQ(dst, rank % 4 == 3 ? MPI_PROC_NULL : rank + 1);
    EXPECT_EQ(src, rank % 4 == 0 ? MPI_PROC_NULL : rank - 1);
    MPI_Comm_free(&cart);
    MPI_Finalize();
  });
  EXPECT_EQ(tempi::topo::topo_stats().remaps, 0u);
}

TEST_F(TempiTopology, CartCreateReorder1ImprovesPlacementEndToEnd) {
  // The 8x8 grid on 8 nodes from the pure-function test, now through the
  // interposed MPI_Cart_create: the communicator must carry the permuted
  // ranks, route messages under the new numbering, and strictly beat the
  // identity placement's inter-node bytes.
  constexpr int kRanks = 64, kRpn = 8;
  std::vector<int> node_of_vertex(kRanks, -1);
  run_n(kRanks, kRpn, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    const int dims[2] = {8, 8};
    const int periods[2] = {1, 1};
    MPI_Comm cart = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Cart_create(MPI_COMM_WORLD, 2, dims, periods, 1, &cart),
              MPI_SUCCESS);
    int crank = -1;
    MPI_Comm_rank(cart, &crank);
    node_of_vertex[static_cast<std::size_t>(crank)] =
        MPI_COMM_WORLD->world->node_of(rank);
    // Exercise the remapped communicator: a ring shift along x must
    // deliver the left neighbor's Cartesian rank.
    int left = MPI_PROC_NULL, right = MPI_PROC_NULL;
    ASSERT_EQ(MPI_Cart_shift(cart, 1, 1, &left, &right), MPI_SUCCESS);
    int got = -1;
    MPI_Request rreq = MPI_REQUEST_NULL;
    MPI_Irecv(&got, 1, MPI_INT, left, 5, cart, &rreq);
    MPI_Send(&crank, 1, MPI_INT, right, 5, cart);
    MPI_Wait(&rreq, MPI_STATUS_IGNORE);
    EXPECT_EQ(got, crank / 8 * 8 + (crank % 8 + 7) % 8);
    MPI_Comm_free(&cart);
    MPI_Finalize();
  });
  const std::vector<topo::Edge> edges = topo::cart_edges({8, 8}, {1, 1});
  std::vector<int> identity(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    identity[static_cast<std::size_t>(r)] = r / kRpn;
  }
  EXPECT_LT(topo::inter_node_bytes(edges, node_of_vertex),
            topo::inter_node_bytes(edges, identity));
  // Every member adopted the remapped communicator exactly once.
  EXPECT_EQ(tempi::topo::topo_stats().remaps, 64u);
}

TEST_F(TempiTopology, KillSwitchDisablesCartRemap) {
  topo::set_enabled(false);
  run_n(64, 8, [](int rank) {
    MPI_Init(nullptr, nullptr);
    const int dims[2] = {8, 8};
    const int periods[2] = {1, 1};
    MPI_Comm cart = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Cart_create(MPI_COMM_WORLD, 2, dims, periods, 1, &cart),
              MPI_SUCCESS);
    int crank = -1;
    MPI_Comm_rank(cart, &crank);
    EXPECT_EQ(crank, rank); // TEMPI_TOPO=0: identity placement
    MPI_Comm_free(&cart);
    MPI_Finalize();
  });
  EXPECT_EQ(tempi::topo::topo_stats().remaps, 0u);
}

} // namespace
