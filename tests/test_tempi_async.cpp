// The non-blocking request engine (tempi/async.hpp): correctness of every
// packing method through Isend/Irecv/Wait, edge cases around request
// handles (MPI_REQUEST_NULL, mixed TEMPI/system arrays, polling Test,
// repeated Wait), buffer pinning until completion, the Waitall unpack
// batch, the halo-exchange auto-selection criterion, and the uninstall
// drain contract.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/async.hpp"
#include "tempi/buffer_cache.hpp"
#include "tempi/tempi.hpp"
#include "halo/halo.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::reference_pack;
using testing_helpers::SpaceBuffer;

void run2(const std::function<void(int)> &body) {
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, body);
}

class TempiAsync : public ::testing::Test {
protected:
  void SetUp() override {
    tempi::install();
    tempi::reset_send_stats();
    tempi::async::reset_engine_stats();
  }
  void TearDown() override {
    tempi::set_send_mode(tempi::SendMode::Auto);
    tempi::uninstall();
  }
};

/// Ship a strided device object rank0 -> rank1 through Isend/Irecv/Wait and
/// verify the delivered bytes against a raw-byte cross-check channel.
void isend_exchange_and_check(tempi::SendMode mode, int vcount, int blocklen,
                              int stride_elems) {
  tempi::set_send_mode(mode);
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(vcount, blocklen, stride_elems, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);

    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 23);
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Isend(buf.get(), 1, t, 1, 7, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      EXPECT_EQ(req, MPI_REQUEST_NULL);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 8,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 7, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      MPI_Status status;
      ASSERT_EQ(MPI_Wait(&req, &status), MPI_SUCCESS);
      EXPECT_EQ(req, MPI_REQUEST_NULL);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 7);

      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 8,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t))
          << "mode " << static_cast<int>(mode);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::set_send_mode(tempi::SendMode::Auto);
}

TEST_F(TempiAsync, DeviceMethodDeliversCorrectBytes) {
  isend_exchange_and_check(tempi::SendMode::ForceDevice, 64, 8, 24);
}

TEST_F(TempiAsync, OneShotMethodDeliversCorrectBytes) {
  isend_exchange_and_check(tempi::SendMode::ForceOneShot, 64, 8, 24);
}

TEST_F(TempiAsync, StagedMethodDeliversCorrectBytes) {
  isend_exchange_and_check(tempi::SendMode::ForceStaged, 64, 8, 24);
}

TEST_F(TempiAsync, AutoDeliversCorrectBytesAndCountsNonBlocking) {
  isend_exchange_and_check(tempi::SendMode::Auto, 128, 2, 10);
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.isend_oneshot + stats.isend_device + stats.isend_staged,
            1u);
  EXPECT_EQ(stats.isend_forwarded, 0u);
  EXPECT_EQ(stats.irecv_accelerated, 1u);
  EXPECT_EQ(stats.irecv_forwarded, 0u);
}

TEST_F(TempiAsync, WaitOnNullRequestSucceeds) {
  sysmpi::ensure_self_context();
  MPI_Request req = MPI_REQUEST_NULL;
  EXPECT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
  EXPECT_EQ(req, MPI_REQUEST_NULL);
}

TEST_F(TempiAsync, WaitallToleratesNullEntries) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(32, 4, 12, MPI_INT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 16);
    fill_pattern(buf.get(), buf.size(), rank + 1);

    // Slots 0 and 2 stay MPI_REQUEST_NULL; slot 1 is a live TEMPI request.
    MPI_Request reqs[3] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL,
                           MPI_REQUEST_NULL};
    MPI_Status statuses[3];
    if (rank == 0) {
      ASSERT_EQ(MPI_Isend(buf.get(), 1, t, 1, 3, MPI_COMM_WORLD, &reqs[1]),
                MPI_SUCCESS);
    } else {
      ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 3, MPI_COMM_WORLD, &reqs[1]),
                MPI_SUCCESS);
    }
    ASSERT_EQ(MPI_Waitall(3, reqs, statuses), MPI_SUCCESS);
    for (MPI_Request r : reqs) {
      EXPECT_EQ(r, MPI_REQUEST_NULL);
    }
    if (rank == 1) {
      EXPECT_EQ(statuses[1].MPI_SOURCE, 0);
      EXPECT_EQ(statuses[1].MPI_TAG, 3);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiAsync, WaitanyOverMixedTempiAndSystemRequests) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(16, 8, 16, MPI_DOUBLE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer dev(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 8);
    std::vector<int> host(64, rank);

    if (rank == 0) {
      fill_pattern(dev.get(), dev.size(), 3);
      MPI_Send(dev.get(), 1, t, 1, 10, MPI_COMM_WORLD); // TEMPI-accelerated
      MPI_Send(host.data(), 64, MPI_INT, 1, 11, MPI_COMM_WORLD); // system
    } else {
      // One TEMPI-owned request (device strided recv) and one system
      // request (host contiguous recv) in the same array.
      MPI_Request reqs[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
      ASSERT_EQ(MPI_Irecv(dev.get(), 1, t, 0, 10, MPI_COMM_WORLD, &reqs[0]),
                MPI_SUCCESS);
      ASSERT_EQ(
          MPI_Irecv(host.data(), 64, MPI_INT, 0, 11, MPI_COMM_WORLD,
                    &reqs[1]),
          MPI_SUCCESS);
      EXPECT_TRUE(tempi::async::owns(reqs[0]));
      EXPECT_FALSE(tempi::async::owns(reqs[1]));

      bool done[2] = {false, false};
      for (int k = 0; k < 2; ++k) {
        int index = -1;
        MPI_Status status;
        ASSERT_EQ(MPI_Waitany(2, reqs, &index, &status), MPI_SUCCESS);
        ASSERT_TRUE(index == 0 || index == 1);
        EXPECT_FALSE(done[index]);
        done[index] = true;
        EXPECT_EQ(reqs[index], MPI_REQUEST_NULL);
      }
      EXPECT_TRUE(done[0] && done[1]);
      EXPECT_EQ(host[0], 0);

      // A third Waitany over the all-null array reports MPI_UNDEFINED.
      int index = 0;
      ASSERT_EQ(MPI_Waitany(2, reqs, &index, MPI_STATUS_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(index, MPI_UNDEFINED);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiAsync, TestPolledBeforeCompletion) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(32, 4, 8, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 32);

    if (rank == 1) {
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 5, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      // The peer has not sent yet (it blocks on our go-ahead), so Test
      // must report not-done and leave the request live.
      int flag = 1;
      ASSERT_EQ(MPI_Test(&req, &flag, MPI_STATUS_IGNORE), MPI_SUCCESS);
      EXPECT_EQ(flag, 0);
      EXPECT_NE(req, MPI_REQUEST_NULL);
      EXPECT_TRUE(tempi::async::owns(req));

      const int go = 1;
      MPI_Send(&go, 1, MPI_INT, 0, 6, MPI_COMM_WORLD);
      flag = 0;
      MPI_Status status;
      while (flag == 0) {
        ASSERT_EQ(MPI_Test(&req, &flag, &status), MPI_SUCCESS);
      }
      EXPECT_EQ(req, MPI_REQUEST_NULL);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 5);
    } else {
      fill_pattern(buf.get(), buf.size(), 9);
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 1, 6, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(buf.get(), 1, t, 1, 5, MPI_COMM_WORLD);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiAsync, RepeatedWaitOnCompletedRequestSucceeds) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(8, 2, 6, MPI_INT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 8);
    fill_pattern(buf.get(), buf.size(), rank + 4);

    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      ASSERT_EQ(MPI_Isend(buf.get(), 1, t, 1, 2, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
    } else {
      ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 2, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
    }
    ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
    EXPECT_EQ(req, MPI_REQUEST_NULL);
    // Completion nulled the handle; waiting again is a no-op success.
    EXPECT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
    EXPECT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiAsync, IntermediatesStayLeasedUntilCompletion) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(64, 4, 12, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 16);
    fill_pattern(buf.get(), buf.size(), 2);

    if (rank == 1) {
      // The peer idles in its Recv until released, so the process-wide
      // lease gauge moves only with this rank's activity here.
      const std::size_t before = tempi::buffer_cache_stats().leased_now;
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 1, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      // The wire intermediate is pinned inside the in-flight op, past the
      // lexical scope of the Irecv call.
      EXPECT_GT(tempi::buffer_cache_stats().leased_now, before);
      const int go = 1;
      MPI_Send(&go, 1, MPI_INT, 0, 0, MPI_COMM_WORLD);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      // The "done" handshake orders the peer's transient send-side leases
      // before this final read of the shared gauge.
      int done = 0;
      MPI_Recv(&done, 1, MPI_INT, 0, 2, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(tempi::buffer_cache_stats().leased_now, before);
    } else {
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(buf.get(), 1, t, 1, 1, MPI_COMM_WORLD);
      const int done = 1;
      MPI_Send(&done, 1, MPI_INT, 1, 2, MPI_COMM_WORLD);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiAsync, HaloIsendAutoSelectsNonSystemMethods) {
  // The acceptance criterion: the paper's halo exchange issued through
  // Isend/Irecv/Waitall must be accelerated under SendMode::Auto, observed
  // through the non-blocking SendStats counters.
  halo::Config cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.vals = 8;
  cfg.radius = 3;
  cfg.px = cfg.py = cfg.pz = 1;
  sysmpi::RunConfig rc;
  rc.ranks = 1;
  rc.ranks_per_node = 1;
  sysmpi::run_ranks(rc, [&](int) {
    MPI_Init(nullptr, nullptr);
    void *grid = nullptr;
    vcuda::Malloc(&grid, cfg.grid_bytes());
    std::memset(grid, 0, cfg.grid_bytes());
    {
      halo::Exchanger ex(cfg, MPI_COMM_WORLD);
      ex.exchange_isend(grid);
    }
    vcuda::Free(grid);
    MPI_Finalize();
  });
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.isend_oneshot + stats.isend_device + stats.isend_staged,
            26u);
  EXPECT_EQ(stats.isend_forwarded, 0u);
  EXPECT_EQ(stats.irecv_accelerated, 26u);
  EXPECT_EQ(stats.irecv_forwarded, 0u);

  const tempi::async::EngineStats es = tempi::async::engine_stats();
  EXPECT_EQ(es.isends, 26u);
  EXPECT_EQ(es.irecvs, 26u);
  EXPECT_EQ(es.completions, 52u);
  // Waitall retired the 26 receives with batched stream syncs.
  EXPECT_GE(es.batched_syncs, 1u);
  EXPECT_EQ(tempi::async::in_flight(), 0u);
}

TEST_F(TempiAsync, HaloIsendMatchesBlockingExchange) {
  // Same traffic, two call patterns: the non-blocking exchange must fill
  // the ghost shells with exactly the bytes the blocking exchange does.
  halo::Config cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.vals = 2;
  cfg.radius = 2;
  cfg.px = 2;
  cfg.py = cfg.pz = 1;
  sysmpi::RunConfig rc;
  rc.ranks = cfg.ranks();
  rc.ranks_per_node = 2;

  std::vector<std::vector<std::byte>> nb(static_cast<std::size_t>(2));
  std::vector<std::vector<std::byte>> blocking(static_cast<std::size_t>(2));
  for (int use_nb = 0; use_nb < 2; ++use_nb) {
    sysmpi::run_ranks(rc, [&](int rank) {
      MPI_Init(nullptr, nullptr);
      void *grid = nullptr;
      vcuda::Malloc(&grid, cfg.grid_bytes());
      // Position-and-rank dependent fill so every region is distinct.
      fill_pattern(grid, cfg.grid_bytes(), 100 + rank);
      {
        halo::Exchanger ex(cfg, MPI_COMM_WORLD);
        if (use_nb != 0) {
          ex.exchange_isend(grid);
        } else {
          ex.exchange(grid);
        }
      }
      auto &out = (use_nb != 0 ? nb : blocking)[static_cast<std::size_t>(
          rank)];
      out.assign(static_cast<std::byte *>(grid),
                 static_cast<std::byte *>(grid) + cfg.grid_bytes());
      vcuda::Free(grid);
      MPI_Finalize();
    });
  }
  EXPECT_EQ(nb[0], blocking[0]);
  EXPECT_EQ(nb[1], blocking[1]);
}

TEST_F(TempiAsync, UninstallDrainsInFlightRequests) {
  // An Irecv that never matches: uninstall must drain the pool loudly
  // instead of leaking it (contract in tempi.hpp).
  sysmpi::RunConfig rc;
  rc.ranks = 1;
  rc.ranks_per_node = 1;
  sysmpi::run_ranks(rc, [&](int) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(16, 4, 8, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 4);
    MPI_Request req = MPI_REQUEST_NULL;
    ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 99, MPI_COMM_WORLD, &req),
              MPI_SUCCESS);
    EXPECT_TRUE(tempi::async::owns(req));
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  EXPECT_EQ(tempi::async::in_flight(), 1u);
  tempi::uninstall(); // drains; TearDown's uninstall becomes a no-op
  EXPECT_EQ(tempi::async::in_flight(), 0u);
}

TEST_F(TempiAsync, WaitsomeCompletesTempiRequestsInMixedArrays) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(32, 4, 12, MPI_INT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer typed(vcuda::MemorySpace::Device,
                      static_cast<std::size_t>(extent) + 16);
    int plain = 0;
    // Slot 0: TEMPI-owned typed op; slot 1: MPI_REQUEST_NULL; slot 2: a
    // plain system request — one Waitsome loop completes the lot.
    MPI_Request reqs[3] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL,
                           MPI_REQUEST_NULL};
    if (rank == 0) {
      fill_pattern(typed.get(), typed.size(), 4);
      plain = 55;
      ASSERT_EQ(MPI_Isend(typed.get(), 1, t, 1, 1, MPI_COMM_WORLD, &reqs[0]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Isend(&plain, 1, MPI_INT, 1, 2, MPI_COMM_WORLD,
                          &reqs[2]),
                MPI_SUCCESS);
    } else {
      ASSERT_EQ(MPI_Irecv(typed.get(), 1, t, 0, 1, MPI_COMM_WORLD,
                          &reqs[0]),
                MPI_SUCCESS);
      EXPECT_TRUE(tempi::async::owns(reqs[0]));
      ASSERT_EQ(MPI_Irecv(&plain, 1, MPI_INT, 0, 2, MPI_COMM_WORLD,
                          &reqs[2]),
                MPI_SUCCESS);
    }
    int done = 0;
    while (done < 2) {
      int outcount = 0;
      int indices[3] = {-1, -1, -1};
      ASSERT_EQ(MPI_Waitsome(3, reqs, &outcount, indices,
                             MPI_STATUSES_IGNORE),
                MPI_SUCCESS);
      ASSERT_NE(outcount, MPI_UNDEFINED);
      done += outcount;
    }
    for (MPI_Request r : reqs) {
      EXPECT_EQ(r, MPI_REQUEST_NULL);
    }
    if (rank == 1) {
      EXPECT_EQ(plain, 55);
    }
    int outcount = 0;
    int indices[3] = {-1, -1, -1};
    ASSERT_EQ(MPI_Waitsome(3, reqs, &outcount, indices,
                           MPI_STATUSES_IGNORE),
              MPI_SUCCESS);
    EXPECT_EQ(outcount, MPI_UNDEFINED); // nothing active left
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiAsync, TestallAndTestanyDriveTempiReceives) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(24, 8, 20, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 8);
    if (rank == 0) {
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 1, 60, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      fill_pattern(buf.get(), buf.size(), 6);
      MPI_Send(buf.get(), 1, t, 1, 61, MPI_COMM_WORLD);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 62,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 61, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      ASSERT_TRUE(tempi::async::owns(req));
      // Unmatched yet: Testany and Testall both report no completion
      // without consuming the request.
      int flag = 1, index = 0;
      ASSERT_EQ(MPI_Testany(1, &req, &index, &flag, MPI_STATUS_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(flag, 0);
      EXPECT_NE(req, MPI_REQUEST_NULL);
      ASSERT_EQ(MPI_Testall(1, &req, &flag, MPI_STATUSES_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(flag, 0);
      const int go = 1;
      MPI_Send(&go, 1, MPI_INT, 0, 60, MPI_COMM_WORLD);
      while (flag == 0) {
        ASSERT_EQ(MPI_Testall(1, &req, &flag, MPI_STATUSES_IGNORE),
                  MPI_SUCCESS);
      }
      EXPECT_EQ(req, MPI_REQUEST_NULL);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 62,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t));
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiAsync, TestsomeConsumesArrivalsIncrementally) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(16, 4, 12, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer a(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
    SpaceBuffer b(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
    if (rank == 0) {
      fill_pattern(a.get(), a.size(), 1);
      fill_pattern(b.get(), b.size(), 2);
      // First message, handshake, then the second: the receiver observes a
      // partial completion set in between.
      MPI_Send(a.get(), 1, t, 1, 70, MPI_COMM_WORLD);
      int seen = 0;
      MPI_Recv(&seen, 1, MPI_INT, 1, 71, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(b.get(), 1, t, 1, 72, MPI_COMM_WORLD);
    } else {
      std::memset(a.get(), 0, a.size());
      std::memset(b.get(), 0, b.size());
      MPI_Request reqs[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
      ASSERT_EQ(MPI_Irecv(a.get(), 1, t, 0, 70, MPI_COMM_WORLD, &reqs[0]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Irecv(b.get(), 1, t, 0, 72, MPI_COMM_WORLD, &reqs[1]),
                MPI_SUCCESS);
      int outcount = 0;
      int indices[2] = {-1, -1};
      while (outcount == 0) {
        ASSERT_EQ(MPI_Testsome(2, reqs, &outcount, indices,
                               MPI_STATUSES_IGNORE),
                  MPI_SUCCESS);
      }
      EXPECT_EQ(outcount, 1); // only the first message has arrived
      EXPECT_EQ(indices[0], 0);
      EXPECT_EQ(reqs[0], MPI_REQUEST_NULL);
      EXPECT_NE(reqs[1], MPI_REQUEST_NULL);
      const int seen = 1;
      MPI_Send(&seen, 1, MPI_INT, 0, 71, MPI_COMM_WORLD);
      int more = 0;
      while (more == 0) {
        ASSERT_EQ(MPI_Testsome(2, reqs, &more, indices,
                               MPI_STATUSES_IGNORE),
                  MPI_SUCCESS);
        ASSERT_NE(more, MPI_UNDEFINED);
      }
      EXPECT_EQ(indices[0], 1);
      EXPECT_EQ(reqs[1], MPI_REQUEST_NULL);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

} // namespace
