// Kernel geometry properties (Sec. 3.3) over randomized StridedBlocks:
// the power-of-two fill rule, the 1024-thread block limit, full coverage
// of the object, and word-size divisibility invariants.
#include "tempi/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <random>

namespace {

using tempi::StridedBlock;

StridedBlock random_block(std::mt19937 &gen) {
  std::uniform_int_distribution<int> dims_dist(1, 3);
  std::uniform_int_distribution<long long> block_dist(1, 2048);
  std::uniform_int_distribution<long long> count_dist(1, 600);
  std::uniform_int_distribution<long long> off_dist(0, 64);
  StridedBlock sb;
  const int dims = dims_dist(gen);
  sb.start = off_dist(gen);
  sb.counts.push_back(block_dist(gen));
  sb.strides.push_back(1);
  long long span = sb.counts[0];
  for (int d = 1; d < dims; ++d) {
    const long long count = count_dist(gen);
    const long long stride = span + off_dist(gen);
    sb.counts.push_back(count);
    sb.strides.push_back(stride);
    span = stride * count;
  }
  return sb;
}

class KernelGeometry : public ::testing::TestWithParam<unsigned> {};

TEST_P(KernelGeometry, InvariantsHold) {
  std::mt19937 gen(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const StridedBlock sb = random_block(gen);
    const int w = tempi::select_word_size(sb);

    // Word size divides the contiguous block, the start, and all strides.
    EXPECT_EQ(sb.counts[0] % w, 0);
    EXPECT_EQ(sb.start % w, 0);
    for (std::size_t d = 1; d < sb.strides.size(); ++d) {
      EXPECT_EQ(sb.strides[d] % w, 0);
    }
    EXPECT_TRUE(w == 1 || w == 2 || w == 4 || w == 8 || w == 16);

    for (const int count : {1, 3}) {
      const vcuda::LaunchConfig cfg = tempi::make_launch_config(sb, w, count);
      // Block limit.
      EXPECT_LE(cfg.block.volume(), 1024ull);
      EXPECT_GE(cfg.block.volume(), 1ull);
      // Power-of-two dimensions.
      EXPECT_TRUE(std::has_single_bit(cfg.block.x));
      EXPECT_TRUE(std::has_single_bit(cfg.block.y));
      EXPECT_TRUE(std::has_single_bit(cfg.block.z));
      // The grid covers the object in every dimension.
      EXPECT_GE(static_cast<long long>(cfg.grid.x) * cfg.block.x * w,
                sb.counts[0]);
      if (sb.ndims() >= 2) {
        EXPECT_GE(static_cast<long long>(cfg.grid.y) * cfg.block.y,
                  sb.counts[1]);
      }
      if (sb.ndims() >= 3) {
        EXPECT_GE(static_cast<long long>(cfg.grid.z) * cfg.block.z,
                  sb.counts[2]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelGeometry, ::testing::Range(1u, 9u));

TEST(KernelCostShape, PackReadsStridedUnpackWritesStrided) {
  StridedBlock sb;
  sb.counts = {32, 100};
  sb.strides = {1, 64};
  const auto pack = tempi::pack_cost(sb, 2, vcuda::MemorySpace::Device,
                                     vcuda::MemorySpace::Device);
  EXPECT_EQ(pack.total_bytes, 32u * 100u * 2u);
  EXPECT_EQ(pack.src.contiguous_bytes, 32u);
  EXPECT_FALSE(pack.src.is_write);
  EXPECT_EQ(pack.dst.contiguous_bytes, 0u);
  EXPECT_TRUE(pack.dst.is_write);

  const auto unpack = tempi::unpack_cost(sb, 2, vcuda::MemorySpace::Device,
                                         vcuda::MemorySpace::Device);
  EXPECT_EQ(unpack.dst.contiguous_bytes, 32u);
  EXPECT_TRUE(unpack.dst.is_write);
}

TEST(KernelCostShape, PinnedEndpointGovernsBothSides) {
  StridedBlock sb;
  sb.counts = {16, 8};
  sb.strides = {1, 32};
  const auto cost = tempi::pack_cost(sb, 1, vcuda::MemorySpace::Device,
                                     vcuda::MemorySpace::Pinned);
  EXPECT_EQ(cost.src.space, vcuda::MemorySpace::Pinned);
  EXPECT_EQ(cost.dst.space, vcuda::MemorySpace::Pinned);
}

TEST(KernelCostShape, ContiguousObjectHasNoStridedSide) {
  StridedBlock sb;
  sb.counts = {4096};
  sb.strides = {1};
  const auto cost = tempi::pack_cost(sb, 1, vcuda::MemorySpace::Device,
                                     vcuda::MemorySpace::Device);
  EXPECT_EQ(cost.src.contiguous_bytes, 0u);
  EXPECT_EQ(cost.dst.contiguous_bytes, 0u);
}

} // namespace
