#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace {

void run_n(int n, int rpn, const std::function<void(int)> &body) {
  sysmpi::RunConfig cfg;
  cfg.ranks = n;
  cfg.ranks_per_node = rpn;
  sysmpi::run_ranks(cfg, body);
}

TEST(Barrier, AlignsVirtualClocks) {
  run_n(6, 3, [](int rank) {
    // Skew the clocks, then barrier: everyone leaves at a common time at
    // least as late as the largest skew.
    vcuda::this_thread_timeline().advance(
        static_cast<vcuda::VirtualNs>(rank) * 1000);
    ASSERT_EQ(MPI_Barrier(MPI_COMM_WORLD), MPI_SUCCESS);
    EXPECT_GE(vcuda::virtual_now(), 5000u);
  });
}

TEST(Barrier, RepeatedBarriersProgress) {
  run_n(4, 2, [](int) {
    vcuda::VirtualNs prev = vcuda::virtual_now();
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(MPI_Barrier(MPI_COMM_WORLD), MPI_SUCCESS);
      EXPECT_GT(vcuda::virtual_now(), prev);
      prev = vcuda::virtual_now();
    }
  });
}

TEST(Bcast, RootValueReachesAll) {
  run_n(7, 3, [](int rank) {
    std::vector<int> buf(100, rank == 2 ? 1234 : 0);
    ASSERT_EQ(MPI_Bcast(buf.data(), 100, MPI_INT, 2, MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(buf[0], 1234);
    EXPECT_EQ(buf[99], 1234);
  });
}

TEST(Bcast, SingleRankIsNoop) {
  run_n(1, 1, [](int) {
    int x = 5;
    EXPECT_EQ(MPI_Bcast(&x, 1, MPI_INT, 0, MPI_COMM_WORLD), MPI_SUCCESS);
    EXPECT_EQ(x, 5);
  });
}

TEST(Allreduce, SumAndMax) {
  run_n(5, 5, [](int rank) {
    const long long mine = rank + 1;
    long long sum = 0;
    ASSERT_EQ(MPI_Allreduce(&mine, &sum, 1, MPI_LONG_LONG, MPI_SUM,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(sum, 15);

    const double dv = rank * 1.5;
    double mx = 0.0;
    ASSERT_EQ(MPI_Allreduce(&dv, &mx, 1, MPI_DOUBLE, MPI_MAX,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_DOUBLE_EQ(mx, 6.0);

    double mn = 0.0;
    ASSERT_EQ(MPI_Allreduce(&dv, &mn, 1, MPI_DOUBLE, MPI_MIN,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_DOUBLE_EQ(mn, 0.0);
  });
}

TEST(Alltoallv, EachPairExchangesDistinctData) {
  constexpr int kRanks = 4;
  run_n(kRanks, 2, [](int rank) {
    // Rank r sends r*100+d to destination d.
    std::vector<int> sendbuf(kRanks), recvbuf(kRanks, -1);
    std::vector<int> counts(kRanks, 1), displs(kRanks);
    std::iota(displs.begin(), displs.end(), 0);
    for (int d = 0; d < kRanks; ++d) {
      sendbuf[static_cast<std::size_t>(d)] = rank * 100 + d;
    }
    ASSERT_EQ(MPI_Alltoallv(sendbuf.data(), counts.data(), displs.data(),
                            MPI_INT, recvbuf.data(), counts.data(),
                            displs.data(), MPI_INT, MPI_COMM_WORLD),
              MPI_SUCCESS);
    for (int s = 0; s < kRanks; ++s) {
      EXPECT_EQ(recvbuf[static_cast<std::size_t>(s)], s * 100 + rank);
    }
  });
}

TEST(Alltoallv, VariableCountsAndDisplacements) {
  constexpr int kRanks = 3;
  run_n(kRanks, 3, [](int rank) {
    // Rank r sends (d+1) ints to destination d.
    std::vector<int> scounts(kRanks), sdispls(kRanks), rcounts(kRanks),
        rdispls(kRanks);
    int stotal = 0;
    for (int d = 0; d < kRanks; ++d) {
      scounts[static_cast<std::size_t>(d)] = d + 1;
      sdispls[static_cast<std::size_t>(d)] = stotal;
      stotal += d + 1;
    }
    int rtotal = 0;
    for (int s = 0; s < kRanks; ++s) {
      rcounts[static_cast<std::size_t>(s)] = rank + 1;
      rdispls[static_cast<std::size_t>(s)] = rtotal;
      rtotal += rank + 1;
    }
    std::vector<int> sendbuf(static_cast<std::size_t>(stotal));
    for (int d = 0, k = 0; d < kRanks; ++d) {
      for (int i = 0; i <= d; ++i, ++k) {
        sendbuf[static_cast<std::size_t>(k)] = rank * 1000 + d * 10 + i;
      }
    }
    std::vector<int> recvbuf(static_cast<std::size_t>(rtotal), -1);
    ASSERT_EQ(MPI_Alltoallv(sendbuf.data(), scounts.data(), sdispls.data(),
                            MPI_INT, recvbuf.data(), rcounts.data(),
                            rdispls.data(), MPI_INT, MPI_COMM_WORLD),
              MPI_SUCCESS);
    for (int s = 0; s < kRanks; ++s) {
      for (int i = 0; i <= rank; ++i) {
        EXPECT_EQ(recvbuf[static_cast<std::size_t>(rdispls[s] + i)],
                  s * 1000 + rank * 10 + i);
      }
    }
  });
}

TEST(DistGraph, NeighborAlltoallvFollowsAdjacency) {
  // 4 ranks in a directed ring: each sends to (rank+1), receives from
  // (rank-1).
  constexpr int kRanks = 4;
  run_n(kRanks, 2, [](int rank) {
    const int src = (rank + kRanks - 1) % kRanks;
    const int dst = (rank + 1) % kRanks;
    MPI_Comm ring = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Dist_graph_create_adjacent(MPI_COMM_WORLD, 1, &src, nullptr,
                                             1, &dst, nullptr, MPI_INFO_NULL,
                                             0, &ring),
              MPI_SUCCESS);
    const int sval = rank * 11;
    int rval = -1;
    const int one = 1, zero = 0;
    ASSERT_EQ(MPI_Neighbor_alltoallv(&sval, &one, &zero, MPI_INT, &rval, &one,
                                     &zero, MPI_INT, ring),
              MPI_SUCCESS);
    EXPECT_EQ(rval, src * 11);
    MPI_Comm_free(&ring);
  });
}

TEST(DistGraph, TwentySixNeighborHaloPattern) {
  // The communication pattern of the paper's 3D stencil: every rank talks
  // to all other ranks of a tiny periodic 2x2x2 grid (26 logical neighbors
  // collapse onto 7 distinct ranks).
  constexpr int kRanks = 8;
  run_n(kRanks, 2, [](int rank) {
    std::vector<int> nbrs;
    for (int r = 0; r < kRanks; ++r) {
      if (r != rank) {
        nbrs.push_back(r);
      }
    }
    const int deg = static_cast<int>(nbrs.size());
    MPI_Comm graph = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Dist_graph_create_adjacent(
                  MPI_COMM_WORLD, deg, nbrs.data(), nullptr, deg, nbrs.data(),
                  nullptr, MPI_INFO_NULL, 0, &graph),
              MPI_SUCCESS);
    std::vector<int> sendbuf(static_cast<std::size_t>(deg)),
        recvbuf(static_cast<std::size_t>(deg), -1);
    std::vector<int> counts(static_cast<std::size_t>(deg), 1),
        displs(static_cast<std::size_t>(deg));
    std::iota(displs.begin(), displs.end(), 0);
    for (int i = 0; i < deg; ++i) {
      sendbuf[static_cast<std::size_t>(i)] = rank * 100 + nbrs[static_cast<std::size_t>(i)];
    }
    ASSERT_EQ(MPI_Neighbor_alltoallv(sendbuf.data(), counts.data(),
                                     displs.data(), MPI_INT, recvbuf.data(),
                                     counts.data(), displs.data(), MPI_INT,
                                     graph),
              MPI_SUCCESS);
    for (int i = 0; i < deg; ++i) {
      EXPECT_EQ(recvbuf[static_cast<std::size_t>(i)],
                nbrs[static_cast<std::size_t>(i)] * 100 + rank);
    }
    MPI_Comm_free(&graph);
  });
}

TEST(CommMgmt, WorldCommCannotBeFreed) {
  run_n(2, 2, [](int) {
    MPI_Comm world = MPI_COMM_WORLD;
    EXPECT_NE(MPI_Comm_free(&world), MPI_SUCCESS);
  });
}

TEST(Wtime, IsVirtualAndMonotonic) {
  run_n(1, 1, [](int) {
    const double t0 = MPI_Wtime();
    vcuda::this_thread_timeline().advance(vcuda::us_to_ns(500.0));
    const double t1 = MPI_Wtime();
    EXPECT_NEAR(t1 - t0, 500e-6, 1e-9);
  });
}

} // namespace
