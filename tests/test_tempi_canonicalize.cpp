// Sec. 3.2 canonicalization: each pass in isolation, the fixed-point
// driver, and the headline property — distinct-but-equivalent MPI
// constructions of the same object converge to the same canonical IR.
#include "interpose/table.hpp"
#include "sysmpi/mpi.hpp"
#include "tempi/canonicalize.hpp"
#include "tempi/translate.hpp"

#include <gtest/gtest.h>

namespace {

using tempi::DenseData;
using tempi::StreamData;
using tempi::Type;

const interpose::MpiTable &sys() { return interpose::system_table(); }

Type canonical_of(MPI_Datatype t) {
  auto ir = tempi::translate(t, sys());
  EXPECT_TRUE(ir.has_value());
  tempi::simplify(*ir);
  return *ir;
}

// --- dense folding (Alg. 2) --------------------------------------------------

TEST(DenseFolding, FoldsTilingStream) {
  // Stream(stride 4, count 100) over Dense(4) == Dense(400).
  Type ty(StreamData{0, 4, 100}, Type(DenseData{0, 4}));
  EXPECT_TRUE(tempi::dense_folding(ty));
  EXPECT_EQ(ty, Type(DenseData{0, 400}));
}

TEST(DenseFolding, KeepsGappedStream) {
  // stride 8 over 4-byte dense leaves a gap: no fold.
  Type ty(StreamData{0, 8, 100}, Type(DenseData{0, 4}));
  Type copy = ty;
  EXPECT_FALSE(tempi::dense_folding(ty));
  EXPECT_EQ(ty, copy);
}

TEST(DenseFolding, AccumulatesOffsets) {
  Type ty(StreamData{64, 4, 10}, Type(DenseData{8, 4}));
  EXPECT_TRUE(tempi::dense_folding(ty));
  EXPECT_EQ(ty, Type(DenseData{72, 40}));
}

TEST(DenseFolding, FoldsBottomUpThroughChain) {
  // Outer stream over (stream over dense) where the inner pair folds and
  // then the outer pair folds too: contiguous(10) of contiguous(4) bytes.
  Type ty(StreamData{0, 4, 10},
          Type(StreamData{0, 1, 4}, Type(DenseData{0, 1})));
  EXPECT_TRUE(tempi::dense_folding(ty));
  EXPECT_EQ(ty, Type(DenseData{0, 40}));
}

// --- stream elision (Alg. 3) -------------------------------------------------

TEST(StreamElision, RemovesSingletonChild) {
  Type ty(StreamData{0, 1024, 8},
          Type(StreamData{0, 512, 1}, Type(DenseData{0, 16})));
  EXPECT_TRUE(tempi::stream_elision(ty));
  EXPECT_EQ(ty, Type(StreamData{0, 1024, 8}, Type(DenseData{0, 16})));
}

TEST(StreamElision, RemovesSingletonRoot) {
  Type ty(StreamData{0, 4096, 1}, Type(DenseData{0, 16}));
  EXPECT_TRUE(tempi::stream_elision(ty));
  EXPECT_EQ(ty, Type(DenseData{0, 16}));
}

TEST(StreamElision, PreservesOffset) {
  Type ty(StreamData{100, 4096, 1}, Type(DenseData{8, 16}));
  EXPECT_TRUE(tempi::stream_elision(ty));
  EXPECT_EQ(ty, Type(DenseData{108, 16}));
}

TEST(StreamElision, LeavesMultiElementStreams) {
  Type ty(StreamData{0, 64, 2}, Type(DenseData{0, 16}));
  EXPECT_FALSE(tempi::stream_elision(ty));
}

// --- stream flattening (Alg. 4) ---------------------------------------------

TEST(StreamFlatten, MergesExactTiling) {
  // Parent stride 40 == child count(10) * child stride(4): one stream of
  // 30 elements at stride 4.
  Type ty(StreamData{0, 40, 3},
          Type(StreamData{0, 4, 10}, Type(DenseData{0, 2})));
  EXPECT_TRUE(tempi::stream_flatten(ty));
  EXPECT_EQ(ty, Type(StreamData{0, 4, 30}, Type(DenseData{0, 2})));
}

TEST(StreamFlatten, KeepsNonTilingPair) {
  Type ty(StreamData{0, 48, 3},
          Type(StreamData{0, 4, 10}, Type(DenseData{0, 2})));
  EXPECT_FALSE(tempi::stream_flatten(ty));
}

TEST(StreamFlatten, AccumulatesOffsets) {
  Type ty(StreamData{64, 40, 3},
          Type(StreamData{8, 4, 10}, Type(DenseData{0, 2})));
  EXPECT_TRUE(tempi::stream_flatten(ty));
  EXPECT_EQ(ty, Type(StreamData{72, 4, 30}, Type(DenseData{0, 2})));
}

// --- sorting (Sec. 3.2.4) ----------------------------------------------------

TEST(SortStreams, OrdersByDescendingStride) {
  // rows-of-columns: inner stride larger than outer.
  Type ty(StreamData{0, 4, 100},
          Type(StreamData{0, 512, 13}, Type(DenseData{0, 4})));
  EXPECT_TRUE(tempi::sort_streams(ty));
  const Type expect(StreamData{0, 512, 13},
                    Type(StreamData{0, 4, 100}, Type(DenseData{0, 4})));
  EXPECT_EQ(ty, expect);
}

TEST(SortStreams, AlreadySortedUnchanged) {
  Type ty(StreamData{0, 512, 13},
          Type(StreamData{0, 4, 100}, Type(DenseData{0, 4})));
  EXPECT_FALSE(tempi::sort_streams(ty));
}

// --- full simplify: the Fig. 2 property --------------------------------------

// The 3D object of Fig. 1/2 with A0=256, A1=512, A2=1024, E0=100, E1=13,
// E2=47 (A in bytes, E in floats).
// (The paper's caption uses A0=256 with E0=100 floats, which would not fit
// one row; we widen A0 to 512 bytes so the object is self-consistent.)
constexpr int kA0 = 512, kA1 = 512, kA2 = 1024;
constexpr int kE0 = 100, kE1 = 13, kE2 = 47;

MPI_Datatype fig2_subarray() {
  const int sizes[3] = {kA2, kA1, kA0 / 4};        // C order: last fastest
  const int subsizes[3] = {kE2, kE1, kE0};
  const int starts[3] = {0, 0, 0};
  MPI_Datatype t = nullptr;
  MPI_Type_create_subarray(3, sizes, subsizes, starts, MPI_ORDER_C, MPI_FLOAT,
                           &t);
  return t;
}

MPI_Datatype fig2_hvector_of_vector() {
  MPI_Datatype plane = nullptr, cuboid = nullptr;
  MPI_Type_vector(kE1, kE0, kA0 / 4, MPI_FLOAT, &plane);
  MPI_Type_create_hvector(kE2, 1, static_cast<MPI_Aint>(kA0) * kA1, plane,
                          &cuboid);
  MPI_Type_free(&plane);
  return cuboid;
}

MPI_Datatype fig2_hvector_of_hvector_of_vector() {
  MPI_Datatype row = nullptr, plane = nullptr, cuboid = nullptr;
  MPI_Type_vector(1, kE0, 1, MPI_FLOAT, &row);
  MPI_Type_create_hvector(kE1, 1, kA0, row, &plane);
  MPI_Type_create_hvector(kE2, 1, static_cast<MPI_Aint>(kA0) * kA1, plane,
                          &cuboid);
  MPI_Type_free(&plane);
  MPI_Type_free(&row);
  return cuboid;
}

TEST(Simplify, Fig2ConstructionsShareOneCanonicalForm) {
  MPI_Datatype a = fig2_subarray();
  MPI_Datatype b = fig2_hvector_of_vector();
  MPI_Datatype c = fig2_hvector_of_hvector_of_vector();

  const Type ca = canonical_of(a);
  const Type cb = canonical_of(b);
  const Type cc = canonical_of(c);

  const Type expect(
      StreamData{0, static_cast<long long>(kA0) * kA1, kE2},
      Type(StreamData{0, kA0, kE1},
           Type(DenseData{0, kE0 * 4})));
  EXPECT_EQ(ca, expect) << tempi::to_string(ca);
  EXPECT_EQ(cb, expect) << tempi::to_string(cb);
  EXPECT_EQ(cc, expect) << tempi::to_string(cc);

  MPI_Type_free(&a);
  MPI_Type_free(&b);
  MPI_Type_free(&c);
}

TEST(Simplify, RowDescriptionsAllBecomeOneDense) {
  // Sec. 2's non-exhaustive list of equivalent row descriptions.
  const Type expect{Type(DenseData{0, kE0 * 4})};

  MPI_Datatype t1 = nullptr;
  MPI_Type_contiguous(kE0, MPI_FLOAT, &t1);
  EXPECT_EQ(canonical_of(t1), expect);

  MPI_Datatype t2 = nullptr;
  MPI_Type_contiguous(kE0 * 4, MPI_BYTE, &t2);
  EXPECT_EQ(canonical_of(t2), expect);

  MPI_Datatype t3 = nullptr;
  MPI_Type_vector(1, kE0, 1, MPI_FLOAT, &t3);
  EXPECT_EQ(canonical_of(t3), expect);

  MPI_Datatype t4 = nullptr;
  MPI_Type_vector(kE0, 4, 4, MPI_BYTE, &t4);
  EXPECT_EQ(canonical_of(t4), expect);

  MPI_Datatype t5 = nullptr;
  MPI_Type_create_hvector(kE0 * 4, 1, 1, MPI_BYTE, &t5);
  EXPECT_EQ(canonical_of(t5), expect);

  const int sizes[1] = {kA0 / 4}, subsizes[1] = {kE0}, starts[1] = {0};
  MPI_Datatype t6 = nullptr;
  MPI_Type_create_subarray(1, sizes, subsizes, starts, MPI_ORDER_C, MPI_FLOAT,
                           &t6);
  EXPECT_EQ(canonical_of(t6), expect);

  for (MPI_Datatype *t : {&t1, &t2, &t3, &t4, &t5, &t6}) {
    MPI_Type_free(t);
  }
}

TEST(Simplify, PlaneDescriptionsAgree) {
  // Sec. 2: four direct plane constructions plus hvector-of-rows.
  MPI_Datatype p1 = nullptr;
  MPI_Type_vector(kE1, kE0, kA0 / 4, MPI_FLOAT, &p1);
  const Type c1 = canonical_of(p1);

  MPI_Datatype p2 = nullptr;
  MPI_Type_vector(kE1, kE0 * 4, kA0, MPI_BYTE, &p2);
  EXPECT_EQ(canonical_of(p2), c1);

  const int sizes[2] = {kA1, kA0 / 4}, subsizes[2] = {kE1, kE0},
            starts[2] = {0, 0};
  MPI_Datatype p3 = nullptr;
  MPI_Type_create_subarray(2, sizes, subsizes, starts, MPI_ORDER_C, MPI_FLOAT,
                           &p3);
  EXPECT_EQ(canonical_of(p3), c1);

  MPI_Datatype row = nullptr, p4 = nullptr;
  MPI_Type_contiguous(kE0, MPI_FLOAT, &row);
  MPI_Type_create_hvector(kE1, 1, kA0, row, &p4);
  EXPECT_EQ(canonical_of(p4), c1);

  for (MPI_Datatype *t : {&p1, &p2, &p3, &p4, &row}) {
    MPI_Type_free(t);
  }
}

TEST(Simplify, ContiguousOfVectorFlattens) {
  // contiguous(3) of vector(4,1,2): parent stride equals child span only
  // if the vector tiles; with stride 2 x count 4 x int4 = 32B extent...
  // Construct a case that genuinely tiles: vector(4, 2, 2, MPI_INT) has
  // extent (3*2+2)*4 = 32 but stride pattern 2-on/2-off; contiguous over
  // it keeps the pattern as one flat stream.
  MPI_Datatype v = nullptr, c = nullptr;
  MPI_Type_vector(4, 2, 4, MPI_INT, &v); // 8B blocks every 16B, span 56B
  MPI_Type_create_resized(v, 0, 64, &c); // pad extent to 64 so it tiles
  MPI_Datatype outer = nullptr;
  MPI_Type_contiguous(3, c, &outer);
  const Type canon = canonical_of(outer);
  // One stream of 12 blocks of 8 dense bytes at stride 16.
  const Type expect(StreamData{0, 16, 12}, Type(DenseData{0, 8}));
  EXPECT_EQ(canon, expect) << tempi::to_string(canon);
  MPI_Type_free(&outer);
  MPI_Type_free(&c);
  MPI_Type_free(&v);
}

TEST(Simplify, ReachesFixedPointQuickly) {
  MPI_Datatype t = fig2_hvector_of_hvector_of_vector();
  auto ir = tempi::translate(t, sys());
  ASSERT_TRUE(ir.has_value());
  tempi::simplify(*ir);
  EXPECT_LE(tempi::last_simplify_rounds(), 6);
  // Idempotent: a second simplify changes nothing.
  Type again = *ir;
  tempi::simplify(again);
  EXPECT_EQ(again, *ir);
  MPI_Type_free(&t);
}

} // namespace
