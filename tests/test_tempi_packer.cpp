// TEMPI pack/unpack kernels: correctness against the scalar reference
// oracle, roundtrip properties over a parameterized shape sweep, and the
// performance structure the paper reports (single launch, block-size
// sensitivity, unpack slower than pack).
#include "interpose/table.hpp"
#include "sysmpi/mpi.hpp"
#include "tempi/canonicalize.hpp"
#include "tempi/packer.hpp"
#include "tempi/translate.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <tuple>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::reference_pack;
using testing_helpers::SpaceBuffer;

/// Build a TEMPI packer for a committed datatype through the same pipeline
/// MPI_Type_commit uses.
tempi::Packer make_packer(MPI_Datatype t) {
  auto ir = tempi::translate(t, interpose::system_table());
  EXPECT_TRUE(ir.has_value());
  tempi::simplify(*ir);
  auto sb = tempi::to_strided_block(*ir);
  EXPECT_TRUE(sb.has_value());
  MPI_Aint lb = 0, extent = 0;
  int size = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  MPI_Type_size(t, &size);
  return tempi::Packer(std::move(*sb), extent, size);
}

TEST(Packer, VectorPackMatchesReference) {
  MPI_Datatype t = nullptr;
  MPI_Type_vector(13, 100, 128, MPI_FLOAT, &t);
  MPI_Type_commit(&t);
  const tempi::Packer packer = make_packer(t);

  SpaceBuffer src(vcuda::MemorySpace::Device, 13 * 128 * 4);
  fill_pattern(src.get(), src.size());
  const auto expect = reference_pack(src.get(), 1, *t);

  SpaceBuffer dst(vcuda::MemorySpace::Device, expect.size());
  ASSERT_EQ(packer.pack(dst.get(), src.get(), 1, vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(std::memcmp(dst.get(), expect.data(), expect.size()), 0);
  MPI_Type_free(&t);
}

TEST(Packer, SubarrayPackMatchesReference) {
  const int sizes[3] = {8, 16, 32}, subsizes[3] = {3, 5, 20},
            starts[3] = {2, 4, 7};
  MPI_Datatype t = nullptr;
  MPI_Type_create_subarray(3, sizes, subsizes, starts, MPI_ORDER_C, MPI_FLOAT,
                           &t);
  MPI_Type_commit(&t);
  const tempi::Packer packer = make_packer(t);
  EXPECT_EQ(packer.block().ndims(), 3);

  SpaceBuffer src(vcuda::MemorySpace::Device, 8 * 16 * 32 * 4);
  fill_pattern(src.get(), src.size());
  const auto expect = reference_pack(src.get(), 1, *t);
  SpaceBuffer dst(vcuda::MemorySpace::Device, expect.size());
  ASSERT_EQ(packer.pack(dst.get(), src.get(), 1, vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(std::memcmp(dst.get(), expect.data(), expect.size()), 0);
  MPI_Type_free(&t);
}

TEST(Packer, UnpackInvertsPack) {
  MPI_Datatype t = nullptr;
  MPI_Type_vector(9, 5, 11, MPI_INT, &t);
  MPI_Type_commit(&t);
  const tempi::Packer packer = make_packer(t);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);

  SpaceBuffer src(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent));
  SpaceBuffer dst(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent));
  fill_pattern(src.get(), src.size());
  std::memset(dst.get(), 0xEE, dst.size());

  SpaceBuffer mid(vcuda::MemorySpace::Device, packer.packed_bytes(1));
  ASSERT_EQ(packer.pack(mid.get(), src.get(), 1, vcuda::default_stream()),
            vcuda::Error::Success);
  ASSERT_EQ(packer.unpack(dst.get(), mid.get(), 1, vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(reference_pack(src.get(), 1, *t), reference_pack(dst.get(), 1, *t));
  MPI_Type_free(&t);
}

TEST(Packer, ContiguousTypeUsesMemcpyNotKernel) {
  MPI_Datatype t = nullptr;
  MPI_Type_contiguous(1024, MPI_FLOAT, &t);
  MPI_Type_commit(&t);
  const tempi::Packer packer = make_packer(t);
  EXPECT_TRUE(packer.contiguous());

  SpaceBuffer src(vcuda::MemorySpace::Device, 4096);
  SpaceBuffer dst(vcuda::MemorySpace::Device, 4096);
  fill_pattern(src.get(), 4096);
  vcuda::reset_counters();
  ASSERT_EQ(packer.pack(dst.get(), src.get(), 1, vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(vcuda::counters().kernel_launches, 0u);
  EXPECT_EQ(vcuda::counters().memcpy_async_calls, 1u);
  EXPECT_EQ(std::memcmp(dst.get(), src.get(), 4096), 0);
  MPI_Type_free(&t);
}

TEST(Packer, MultiCountUsesOneKernelLaunch) {
  // Sec. 3.3: the dynamic count is handled inside a single kernel (grid Z
  // for 2D), not by one launch per object.
  MPI_Datatype t = nullptr;
  MPI_Type_vector(16, 32, 64, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  const tempi::Packer packer = make_packer(t);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);

  constexpr int kCount = 7;
  SpaceBuffer src(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) * kCount + 64);
  fill_pattern(src.get(), src.size());
  SpaceBuffer dst(vcuda::MemorySpace::Device, packer.packed_bytes(kCount));
  vcuda::reset_counters();
  ASSERT_EQ(packer.pack(dst.get(), src.get(), kCount,
                        vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(vcuda::counters().kernel_launches, 1u);
  EXPECT_EQ(vcuda::counters().stream_syncs, 1u);
  const auto expect = reference_pack(src.get(), kCount, *t);
  EXPECT_EQ(std::memcmp(dst.get(), expect.data(), expect.size()), 0);
  MPI_Type_free(&t);
}

TEST(Packer, OneShotDestinationIsSlowerPerByteThanDevice) {
  MPI_Datatype t = nullptr;
  MPI_Type_vector(4096, 128, 256, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  const tempi::Packer packer = make_packer(t);

  SpaceBuffer src(vcuda::MemorySpace::Device, 4096 * 256);
  SpaceBuffer dev_dst(vcuda::MemorySpace::Device, packer.packed_bytes(1));
  SpaceBuffer host_dst(vcuda::MemorySpace::Pinned, packer.packed_bytes(1));

  const vcuda::VirtualNs t0 = vcuda::virtual_now();
  packer.pack(dev_dst.get(), src.get(), 1, vcuda::default_stream());
  const vcuda::VirtualNs dev_ns = vcuda::virtual_now() - t0;

  const vcuda::VirtualNs t1 = vcuda::virtual_now();
  packer.pack(host_dst.get(), src.get(), 1, vcuda::default_stream());
  const vcuda::VirtualNs host_ns = vcuda::virtual_now() - t1;

  EXPECT_GT(host_ns, dev_ns); // interconnect-bound vs HBM-bound
  MPI_Type_free(&t);
}

TEST(Packer, UnpackSlowerThanPackForSmallBlocks) {
  MPI_Datatype t = nullptr;
  MPI_Type_vector(65536, 8, 64, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  const tempi::Packer packer = make_packer(t);
  SpaceBuffer obj(vcuda::MemorySpace::Device, 65536 * 64);
  SpaceBuffer packed(vcuda::MemorySpace::Device, packer.packed_bytes(1));

  const vcuda::VirtualNs t0 = vcuda::virtual_now();
  packer.pack(packed.get(), obj.get(), 1, vcuda::default_stream());
  const vcuda::VirtualNs pack_ns = vcuda::virtual_now() - t0;
  const vcuda::VirtualNs t1 = vcuda::virtual_now();
  packer.unpack(obj.get(), packed.get(), 1, vcuda::default_stream());
  const vcuda::VirtualNs unpack_ns = vcuda::virtual_now() - t1;
  EXPECT_GT(unpack_ns, pack_ns);
  MPI_Type_free(&t);
}

TEST(PackPlan, MatchesRecomputeSelection) {
  // The commit-time plan must agree exactly with the per-call recompute it
  // replaced: same word size, same geometry for every dynamic count.
  MPI_Datatype types[3] = {nullptr, nullptr, nullptr};
  MPI_Type_vector(13, 100, 128, MPI_FLOAT, &types[0]);
  const int sizes[3] = {8, 16, 32}, subsizes[3] = {3, 5, 20},
            starts[3] = {2, 4, 7};
  MPI_Type_create_subarray(3, sizes, subsizes, starts, MPI_ORDER_C, MPI_FLOAT,
                           &types[1]);
  MPI_Type_vector(7, 3, 11, MPI_BYTE, &types[2]);
  for (MPI_Datatype &t : types) {
    MPI_Type_commit(&t);
    const tempi::Packer packer = make_packer(t);
    const tempi::PackPlan &plan = packer.plan();
    const tempi::StridedBlock &sb = packer.block();
    EXPECT_EQ(plan.word_size, tempi::select_word_size(sb));
    for (int count : {1, 2, 7, 64}) {
      const vcuda::LaunchConfig want =
          tempi::make_launch_config(sb, plan.word_size, count);
      const vcuda::LaunchConfig got = tempi::launch_config_for(plan, count);
      EXPECT_EQ(got.block.x, want.block.x);
      EXPECT_EQ(got.block.y, want.block.y);
      EXPECT_EQ(got.block.z, want.block.z);
      EXPECT_EQ(got.grid.x, want.grid.x);
      EXPECT_EQ(got.grid.y, want.grid.y);
      EXPECT_EQ(got.grid.z, want.grid.z);
    }
    MPI_Type_free(&t);
  }
}

TEST(PackPlan, PlanDrivenPackMatchesRecomputePathForRandomTypes) {
  // Plan-driven launches (Packer::pack) must be byte-identical to the
  // recompute-per-call launch_pack path for randomly drawn vector types.
  std::mt19937 rng(20210623); // the paper's conference date as seed
  std::uniform_int_distribution<int> counts(1, 40);
  std::uniform_int_distribution<int> blocks(1, 32);
  std::uniform_int_distribution<int> pads(0, 17);
  std::uniform_int_distribution<int> objs(1, 4);
  for (int round = 0; round < 25; ++round) {
    const int vcount = counts(rng);
    const int blocklen = blocks(rng);
    const int stride = blocklen + pads(rng);
    const int objcount = objs(rng);
    MPI_Datatype t = nullptr;
    ASSERT_EQ(MPI_Type_vector(vcount, blocklen, stride, MPI_INT, &t),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Type_commit(&t), MPI_SUCCESS);
    const tempi::Packer packer = make_packer(t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);

    const std::size_t span = static_cast<std::size_t>(extent) * objcount + 64;
    SpaceBuffer src(vcuda::MemorySpace::Device, span);
    fill_pattern(src.get(), span, static_cast<std::uint32_t>(round * 977));
    SpaceBuffer via_plan(vcuda::MemorySpace::Device,
                         packer.packed_bytes(objcount));
    SpaceBuffer via_recompute(vcuda::MemorySpace::Device,
                              packer.packed_bytes(objcount));

    ASSERT_EQ(packer.pack(via_plan.get(), src.get(), objcount,
                          vcuda::default_stream()),
              vcuda::Error::Success);
    ASSERT_EQ(tempi::launch_pack(packer.block(), extent, via_recompute.get(),
                                 src.get(), objcount,
                                 vcuda::default_stream()),
              vcuda::Error::Success);
    vcuda::StreamSynchronize(vcuda::default_stream());
    EXPECT_EQ(std::memcmp(via_plan.get(), via_recompute.get(),
                          packer.packed_bytes(objcount)),
              0)
        << "vector(" << vcount << "," << blocklen << "," << stride
        << ") x" << objcount;
    MPI_Type_free(&t);
  }
}

TEST(PackerDma, UniformStrideFoldsBatchIntoOneCopy) {
  // A 2-D subarray spanning the full outer dimension has extent ==
  // rows * pitch, so consecutive objects continue the row grid and any
  // count folds into a single Memcpy2DAsync.
  const int sizes[2] = {16, 64}, subsizes[2] = {16, 24}, starts[2] = {0, 8};
  MPI_Datatype t = nullptr;
  ASSERT_EQ(MPI_Type_create_subarray(2, sizes, subsizes, starts, MPI_ORDER_C,
                                     MPI_BYTE, &t),
            MPI_SUCCESS);
  ASSERT_EQ(MPI_Type_commit(&t), MPI_SUCCESS);
  const tempi::Packer packer = make_packer(t);
  ASSERT_TRUE(packer.dma_capable());
  EXPECT_TRUE(packer.plan().dma_uniform);

  constexpr int kCount = 5;
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  SpaceBuffer src(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) * kCount + 64);
  fill_pattern(src.get(), src.size());
  SpaceBuffer dst(vcuda::MemorySpace::Device, packer.packed_bytes(kCount));
  vcuda::reset_counters();
  ASSERT_EQ(packer.pack_dma(dst.get(), src.get(), kCount,
                            vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(vcuda::counters().memcpy_async_calls, 1u); // folded, not kCount
  const auto expect = reference_pack(src.get(), kCount, *t);
  EXPECT_EQ(std::memcmp(dst.get(), expect.data(), expect.size()), 0);

  // And the DMA unpack must invert it, also in one call.
  SpaceBuffer back(vcuda::MemorySpace::Device,
                   static_cast<std::size_t>(extent) * kCount + 64);
  std::memset(back.get(), 0, back.size());
  vcuda::reset_counters();
  ASSERT_EQ(packer.unpack_dma(back.get(), dst.get(), kCount,
                              vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(vcuda::counters().memcpy_async_calls, 1u);
  EXPECT_EQ(reference_pack(back.get(), kCount, *t), expect);
  MPI_Type_free(&t);
}

TEST(PackerDma, NonUniformStrideStillCopiesPerObject) {
  // A plain vector's extent ends at the last block, so object strides are
  // not uniform row strides: one DMA call per object remains.
  MPI_Datatype t = nullptr;
  ASSERT_EQ(MPI_Type_vector(8, 16, 48, MPI_BYTE, &t), MPI_SUCCESS);
  ASSERT_EQ(MPI_Type_commit(&t), MPI_SUCCESS);
  const tempi::Packer packer = make_packer(t);
  ASSERT_TRUE(packer.dma_capable());
  EXPECT_FALSE(packer.plan().dma_uniform);

  constexpr int kCount = 3;
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  SpaceBuffer src(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) * kCount + 64);
  fill_pattern(src.get(), src.size());
  SpaceBuffer dst(vcuda::MemorySpace::Device, packer.packed_bytes(kCount));
  vcuda::reset_counters();
  ASSERT_EQ(packer.pack_dma(dst.get(), src.get(), kCount,
                            vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(vcuda::counters().memcpy_async_calls,
            static_cast<std::uint64_t>(kCount));
  const auto expect = reference_pack(src.get(), kCount, *t);
  EXPECT_EQ(std::memcmp(dst.get(), expect.data(), expect.size()), 0);
  MPI_Type_free(&t);
}

TEST(PackerMemo, RemembersMethodPerCountAndGeneration) {
  MPI_Datatype t = nullptr;
  MPI_Type_vector(64, 8, 16, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  const tempi::Packer packer = make_packer(t);

  EXPECT_FALSE(packer.cached_method(1, 1).has_value()); // cold
  packer.remember_method(1, 1, tempi::Method::OneShot);
  ASSERT_TRUE(packer.cached_method(1, 1).has_value());
  EXPECT_EQ(*packer.cached_method(1, 1), tempi::Method::OneShot);
  // A different count or a newer model generation must miss.
  EXPECT_FALSE(packer.cached_method(2, 1).has_value());
  EXPECT_FALSE(packer.cached_method(1, 2).has_value());
  // Re-remembering under the new generation replaces the slot.
  packer.remember_method(1, 2, tempi::Method::Staged);
  EXPECT_EQ(*packer.cached_method(1, 2), tempi::Method::Staged);
  EXPECT_FALSE(packer.cached_method(1, 1).has_value());
  MPI_Type_free(&t);
}

// Parameterized sweep over (count, blocklen, stride, dtype bytes, objcount):
// TEMPI pack must equal the reference for sorted-construction vectors, and
// pack-unpack must restore the object, in device memory.
class PackerSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PackerSweep, MatchesReferenceAndRoundtrips) {
  const auto [vcount, blocklen, stride, objcount] = GetParam();
  MPI_Datatype t = nullptr;
  ASSERT_EQ(MPI_Type_vector(vcount, blocklen, stride, MPI_FLOAT, &t),
            MPI_SUCCESS);
  ASSERT_EQ(MPI_Type_commit(&t), MPI_SUCCESS);
  const tempi::Packer packer = make_packer(t);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);

  const std::size_t span =
      static_cast<std::size_t>(extent) * objcount + 256;
  SpaceBuffer src(vcuda::MemorySpace::Device, span);
  SpaceBuffer back(vcuda::MemorySpace::Device, span);
  fill_pattern(src.get(), span, static_cast<std::uint32_t>(stride * 31));
  std::memset(back.get(), 0, span);

  const auto expect = reference_pack(src.get(), objcount, *t);
  SpaceBuffer packed(vcuda::MemorySpace::Device,
                     packer.packed_bytes(objcount));
  ASSERT_EQ(packer.pack(packed.get(), src.get(), objcount,
                        vcuda::default_stream()),
            vcuda::Error::Success);
  ASSERT_EQ(std::memcmp(packed.get(), expect.data(), expect.size()), 0);

  ASSERT_EQ(packer.unpack(back.get(), packed.get(), objcount,
                          vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(reference_pack(back.get(), objcount, *t), expect);
  MPI_Type_free(&t);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackerSweep,
    ::testing::Combine(::testing::Values(1, 2, 13, 64),   // vector count
                       ::testing::Values(1, 3, 25),       // blocklength
                       ::testing::Values(26, 40),         // stride (elems)
                       ::testing::Values(1, 2, 5)));      // object count

// 3D subarray sweep: canonical 3D kernels across odd shapes and offsets.
class Packer3DSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Packer3DSweep, SubarrayRoundtrips) {
  const auto [sx, sy, sz] = GetParam();
  const int sizes[3] = {sz + 3, sy + 2, sx + 5};
  const int subsizes[3] = {sz, sy, sx};
  const int starts[3] = {1, 2, 3};
  MPI_Datatype t = nullptr;
  ASSERT_EQ(MPI_Type_create_subarray(3, sizes, subsizes, starts, MPI_ORDER_C,
                                     MPI_DOUBLE, &t),
            MPI_SUCCESS);
  ASSERT_EQ(MPI_Type_commit(&t), MPI_SUCCESS);
  const tempi::Packer packer = make_packer(t);

  const std::size_t span = static_cast<std::size_t>(sizes[0]) * sizes[1] *
                           sizes[2] * sizeof(double);
  SpaceBuffer src(vcuda::MemorySpace::Device, span);
  SpaceBuffer back(vcuda::MemorySpace::Device, span);
  fill_pattern(src.get(), span, static_cast<std::uint32_t>(sx * sy * sz));
  std::memset(back.get(), 0, span);

  const auto expect = reference_pack(src.get(), 1, *t);
  SpaceBuffer packed(vcuda::MemorySpace::Device, packer.packed_bytes(1));
  ASSERT_EQ(packer.pack(packed.get(), src.get(), 1, vcuda::default_stream()),
            vcuda::Error::Success);
  ASSERT_EQ(std::memcmp(packed.get(), expect.data(), expect.size()), 0);
  ASSERT_EQ(packer.unpack(back.get(), packed.get(), 1,
                          vcuda::default_stream()),
            vcuda::Error::Success);
  EXPECT_EQ(reference_pack(back.get(), 1, *t), expect);
  MPI_Type_free(&t);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Packer3DSweep,
                         ::testing::Combine(::testing::Values(1, 4, 9),
                                            ::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 2, 7)));

} // namespace
