// The persistent-operation fast path (tempi/async.hpp channels):
// Send_init/Recv_init/Start/Startall/Request_free interposition, re-arm
// semantics across Wait/Waitall/Test, graph-replayed zero-setup sends,
// pipelined persistent sends under an injected wire limit, the
// Type_free-while-channel-live graveyard pin, the TEMPI_PERSISTENT kill
// switch, lease pinning/release, and the uninstall drain contract.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/async.hpp"
#include "tempi/buffer_cache.hpp"
#include "tempi/tempi.hpp"
#include "tempi/topology.hpp"
#include "test_helpers.hpp"
#include "vcuda/clock.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::reference_pack;
using testing_helpers::SpaceBuffer;

void run2(const std::function<void(int)> &body) {
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, body);
}

class TempiPersistent : public ::testing::Test {
protected:
  void SetUp() override {
    tempi::install();
    tempi::reset_send_stats();
    tempi::async::reset_engine_stats();
    // The exact-count replay/launch assertions below depend on channels
    // staying frozen; the tuner is re-enabled (and its cells cleared) in
    // TearDown so each test opts in to refresh traffic explicitly.
    tempi::tune::set_enabled(false);
  }
  void TearDown() override {
    tempi::set_send_mode(tempi::SendMode::Auto);
    tempi::set_persistent_enabled(true);
    tempi::set_wire_chunk_limit(tempi::kMaxWireBytes);
    tempi::set_chunk_bytes_override(0);
    tempi::tune::set_enabled(true);
    tempi::tune::reset();
    tempi::uninstall();
  }
};

/// Iterate a frozen channel pair `iters` times: the sender refills the
/// object with a fresh pattern each round, the receiver verifies the
/// delivered bytes against a raw-byte cross-check channel every round —
/// re-arms must deliver fresh payloads, not the recording-time state.
void persistent_exchange_and_check(tempi::SendMode mode, int vcount,
                                   int blocklen, int stride_elems,
                                   int iters) {
  tempi::set_send_mode(mode);
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(vcount, blocklen, stride_elems, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);

    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 7, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      for (int it = 0; it < iters; ++it) {
        fill_pattern(buf.get(), buf.size(), 100 + it);
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
        EXPECT_NE(req, MPI_REQUEST_NULL); // persistent handles survive Wait
        MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 8,
                 MPI_COMM_WORLD);
      }
    } else {
      ASSERT_EQ(MPI_Recv_init(buf.get(), 1, t, 0, 7, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      std::vector<std::byte> raw(buf.size());
      for (int it = 0; it < iters; ++it) {
        std::memset(buf.get(), 0, buf.size());
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        MPI_Status status;
        ASSERT_EQ(MPI_Wait(&req, &status), MPI_SUCCESS);
        EXPECT_NE(req, MPI_REQUEST_NULL);
        EXPECT_EQ(status.MPI_SOURCE, 0);
        EXPECT_EQ(status.MPI_TAG, 7);
        MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 8,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                  reference_pack(raw.data(), 1, *t))
            << "mode " << static_cast<int>(mode) << " iteration " << it;
      }
    }
    ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
    EXPECT_EQ(req, MPI_REQUEST_NULL);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::set_send_mode(tempi::SendMode::Auto);
}

TEST_F(TempiPersistent, DeviceMethodReArmsCorrectly) {
  persistent_exchange_and_check(tempi::SendMode::ForceDevice, 64, 8, 24, 4);
}

TEST_F(TempiPersistent, OneShotMethodReArmsCorrectly) {
  persistent_exchange_and_check(tempi::SendMode::ForceOneShot, 64, 8, 24, 4);
}

TEST_F(TempiPersistent, StagedMethodReArmsCorrectly) {
  persistent_exchange_and_check(tempi::SendMode::ForceStaged, 64, 8, 24, 4);
}

TEST_F(TempiPersistent, AutoFreezesAChannelAndCountsReplays) {
  persistent_exchange_and_check(tempi::SendMode::Auto, 128, 2, 10, 5);
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.persistent_init, 2u);           // one channel per side
  EXPECT_EQ(stats.persistent_start, 10u);         // 5 arms per side
  EXPECT_GE(stats.persistent_replay_hits, 10u);   // send arms + recv unpacks
  EXPECT_GE(stats.persistent_graph_launches, 10u);
  EXPECT_EQ(stats.persistent_forwarded, 0u);
  EXPECT_EQ(tempi::async::persistent_open(), 0u); // all freed in-test
}

TEST_F(TempiPersistent, PersistentSendInteroperatesWithPlainTypedRecv) {
  // The monolithic wire format is per-side: a frozen sender must remain
  // receivable by an ordinary typed MPI_Recv on the peer.
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(32, 16, 48, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 32);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 9);
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 3, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 4,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      ASSERT_EQ(MPI_Recv(buf.get(), 1, t, 0, 3, MPI_COMM_WORLD,
                         MPI_STATUS_IGNORE),
                MPI_SUCCESS);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 4,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t));
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPersistent, StartallArmsAndWaitallReArmsMixedChannels) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(48, 4, 12, MPI_INT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    // Two channels per rank (distinct tags) armed through one Startall and
    // completed through one Waitall, twice over.
    SpaceBuffer a(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 16);
    SpaceBuffer b(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 16);
    MPI_Request reqs[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
    if (rank == 0) {
      ASSERT_EQ(MPI_Send_init(a.get(), 1, t, 1, 20, MPI_COMM_WORLD, &reqs[0]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Send_init(b.get(), 1, t, 1, 21, MPI_COMM_WORLD, &reqs[1]),
                MPI_SUCCESS);
    } else {
      ASSERT_EQ(MPI_Recv_init(a.get(), 1, t, 0, 20, MPI_COMM_WORLD,
                              &reqs[0]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Recv_init(b.get(), 1, t, 0, 21, MPI_COMM_WORLD,
                              &reqs[1]),
                MPI_SUCCESS);
    }
    for (int it = 0; it < 2; ++it) {
      if (rank == 0) {
        fill_pattern(a.get(), a.size(), 40 + it);
        fill_pattern(b.get(), b.size(), 50 + it);
        ASSERT_EQ(MPI_Startall(2, reqs), MPI_SUCCESS);
        MPI_Status statuses[2];
        ASSERT_EQ(MPI_Waitall(2, reqs, statuses), MPI_SUCCESS);
        MPI_Send(a.get(), static_cast<int>(a.size()), MPI_BYTE, 1, 22,
                 MPI_COMM_WORLD);
        MPI_Send(b.get(), static_cast<int>(b.size()), MPI_BYTE, 1, 23,
                 MPI_COMM_WORLD);
      } else {
        std::memset(a.get(), 0, a.size());
        std::memset(b.get(), 0, b.size());
        ASSERT_EQ(MPI_Startall(2, reqs), MPI_SUCCESS);
        MPI_Status statuses[2];
        ASSERT_EQ(MPI_Waitall(2, reqs, statuses), MPI_SUCCESS);
        EXPECT_EQ(statuses[0].MPI_TAG, 20);
        EXPECT_EQ(statuses[1].MPI_TAG, 21);
        for (MPI_Request r : reqs) {
          EXPECT_NE(r, MPI_REQUEST_NULL); // survived Waitall
        }
        std::vector<std::byte> raw(a.size());
        MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 22,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_EQ(reference_pack(a.get(), 1, *t),
                  reference_pack(raw.data(), 1, *t));
        MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 23,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_EQ(reference_pack(b.get(), 1, *t),
                  reference_pack(raw.data(), 1, *t));
      }
    }
    ASSERT_EQ(MPI_Request_free(&reqs[0]), MPI_SUCCESS);
    ASSERT_EQ(MPI_Request_free(&reqs[1]), MPI_SUCCESS);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPersistent, TestDrivesAPersistentReceiveToCompletion) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(32, 8, 24, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 8);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      // Delay the send behind a handshake so the receiver polls Test at
      // least once against an unmatched wire.
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 1, 90, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      fill_pattern(buf.get(), buf.size(), 5);
      ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 91, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
    } else {
      ASSERT_EQ(MPI_Recv_init(buf.get(), 1, t, 0, 91, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
      int flag = 0;
      MPI_Status status;
      ASSERT_EQ(MPI_Test(&req, &flag, &status), MPI_SUCCESS);
      EXPECT_EQ(flag, 0); // nothing sent yet: the channel stays armed
      const int go = 1;
      MPI_Send(&go, 1, MPI_INT, 0, 90, MPI_COMM_WORLD);
      while (flag == 0) {
        ASSERT_EQ(MPI_Test(&req, &flag, &status), MPI_SUCCESS);
      }
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 91);
      EXPECT_NE(req, MPI_REQUEST_NULL);
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPersistent, InactiveChannelCompletesImmediatelyWithEmptyStatus) {
  sysmpi::ensure_self_context();
  MPI_Datatype t = nullptr;
  MPI_Type_vector(16, 4, 12, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  SpaceBuffer buf(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
  MPI_Request req = MPI_REQUEST_NULL;
  ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 0, 1, MPI_COMM_WORLD, &req),
            MPI_SUCCESS);
  ASSERT_TRUE(tempi::async::owns(req));
  // Never started: Wait and Test complete immediately with empty statuses.
  MPI_Status status;
  status.MPI_SOURCE = 42;
  ASSERT_EQ(MPI_Wait(&req, &status), MPI_SUCCESS);
  EXPECT_NE(req, MPI_REQUEST_NULL);
  EXPECT_EQ(status.MPI_SOURCE, -1);
  int flag = 0;
  ASSERT_EQ(MPI_Test(&req, &flag, &status), MPI_SUCCESS);
  EXPECT_EQ(flag, 1);
  ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
  MPI_Type_free(&t);
}

TEST_F(TempiPersistent, DoubleStartIsRejected) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(16, 4, 12, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 8);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 3);
      ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 5, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
      EXPECT_EQ(MPI_Start(&req), MPI_ERR_ARG); // armed twice
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
    } else {
      MPI_Recv(buf.get(), 1, t, 0, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPersistent, PipelinedChannelUnderInjectedWireLimit) {
  // A message over the injected wire limit freezes a Pipelined channel on
  // both endpoints: the sender replays one pre-recorded pack graph per
  // leg, the receiver re-arms a ChunkedRecv per Start.
  tempi::set_wire_chunk_limit(16 * 1024);
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(2048, 16, 48, MPI_BYTE, &t); // 32 KiB packed > limit
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 16);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 60, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      for (int it = 0; it < 3; ++it) {
        fill_pattern(buf.get(), buf.size(), 70 + it);
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
        MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 61,
                 MPI_COMM_WORLD);
      }
    } else {
      ASSERT_EQ(MPI_Recv_init(buf.get(), 1, t, 0, 60, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      std::vector<std::byte> raw(buf.size());
      for (int it = 0; it < 3; ++it) {
        std::memset(buf.get(), 0, buf.size());
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        MPI_Status status;
        ASSERT_EQ(MPI_Wait(&req, &status), MPI_SUCCESS);
        EXPECT_EQ(static_cast<std::size_t>(status.count_bytes),
                  static_cast<std::size_t>(2048) * 16);
        MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 61,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                  reference_pack(raw.data(), 1, *t))
            << "iteration " << it;
      }
    }
    ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.persistent_init, 2u);
  EXPECT_EQ(stats.persistent_start, 6u);
  // 32 KiB over a 16 KiB limit is two full legs plus the empty
  // terminator: the sender replays one graph per non-empty leg per arm,
  // while pipelined receives re-arm a ChunkedRecv (no replay).
  EXPECT_EQ(stats.persistent_replay_hits, 3u);
  EXPECT_EQ(stats.persistent_graph_launches, 6u);
  EXPECT_GT(stats.pipeline_chunks, 0u);
  tempi::set_wire_chunk_limit(tempi::kMaxWireBytes);
}

TEST_F(TempiPersistent, RefreezeFollowsModelGenerationExactlyOnce) {
  // Frozen channels subscribe to the tuner's refresh generation, not the
  // transfer-config generation: chunk-override churn alone must leave the
  // recorded graphs untouched, one model refresh re-records each channel
  // exactly once at its next Start (never blocking it), and every Start
  // after that replays the new plan with no further re-search.
  tempi::set_wire_chunk_limit(16 * 1024);
  tempi::set_chunk_bytes_override(4096);
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(2048, 16, 48, MPI_BYTE, &t); // 32 KiB packed > limit
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 16);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 80, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
    } else {
      ASSERT_EQ(MPI_Recv_init(buf.get(), 1, t, 0, 80, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
    }
    std::vector<std::byte> raw(buf.size());
    const auto exchange = [&](int it) {
      if (rank == 0) {
        fill_pattern(buf.get(), buf.size(), 90 + it);
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
        MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 81,
                 MPI_COMM_WORLD);
      } else {
        std::memset(buf.get(), 0, buf.size());
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
        MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 81,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                  reference_pack(raw.data(), 1, *t))
            << "iteration " << it;
      }
    };

    // Frozen 4 KiB plan: arms replay, nothing re-records.
    exchange(0);
    exchange(1);
    MPI_Barrier(MPI_COMM_WORLD);
    EXPECT_EQ(tempi::send_stats().model_refreezes, 0u);

    // Transfer-config churn only (no model refresh): still frozen.
    if (rank == 0) {
      tempi::set_chunk_bytes_override(8192);
    }
    MPI_Barrier(MPI_COMM_WORLD);
    exchange(2);
    MPI_Barrier(MPI_COMM_WORLD);
    EXPECT_EQ(tempi::send_stats().model_refreezes, 0u);

    // A real model refresh: fold two (harmless — Staged never wins)
    // observations and bump the refresh generation.
    if (rank == 0) {
      tempi::tune::set_enabled(true);
      tempi::tune::observe(tempi::tune::Axis::D2H, 0, 1,
                           vcuda::us_to_ns(50.0));
      tempi::tune::observe(tempi::tune::Axis::D2H, 0, 1,
                           vcuda::us_to_ns(50.0));
      EXPECT_TRUE(tempi::tune::refresh_now());
      tempi::tune::set_enabled(false);
    }
    MPI_Barrier(MPI_COMM_WORLD);
    exchange(3); // each side re-records onto the 8 KiB plan, once
    MPI_Barrier(MPI_COMM_WORLD);
    EXPECT_EQ(tempi::send_stats().model_refreezes, 2u);

    // Steady state again: the generation was consumed, replays only.
    exchange(4);
    exchange(5);
    MPI_Barrier(MPI_COMM_WORLD);
    EXPECT_EQ(tempi::send_stats().model_refreezes, 2u);

    ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.persistent_init, 2u);
  EXPECT_EQ(stats.persistent_start, 12u);
  EXPECT_EQ(stats.model_refreezes, 2u);
  EXPECT_GE(stats.model_generation_bumps, 1u);
  tempi::set_wire_chunk_limit(tempi::kMaxWireBytes);
  tempi::set_chunk_bytes_override(0);
}

TEST_F(TempiPersistent, RefreezeSurvivesRemappedCartCommunicator) {
  // Persistent channels on a communicator whose ranks were re-placed by
  // MPI_Cart_create(reorder=1): freeze, replay with fresh payloads, and
  // re-freeze after a model-generation bump — all under the permuted
  // numbering (matching uses Cartesian ranks, not parent ranks). The
  // wire limit forces Pipelined plans so the mid-stream chunk change
  // makes every re-choice an actual re-record.
  tempi::set_wire_chunk_limit(16 * 1024);
  tempi::set_chunk_bytes_override(4096);
  sysmpi::RunConfig cfg;
  cfg.ranks = 64;
  cfg.ranks_per_node = 8; // 8x8 grid on 8 nodes: the brick remap engages
  sysmpi::run_ranks(cfg, [](int) {
    MPI_Init(nullptr, nullptr);
    const int dims[2] = {8, 8};
    const int periods[2] = {1, 1};
    MPI_Comm cart = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Cart_create(MPI_COMM_WORLD, 2, dims, periods, 1, &cart),
              MPI_SUCCESS);
    int crank = -1;
    MPI_Comm_rank(cart, &crank);
    int left = MPI_PROC_NULL, right = MPI_PROC_NULL;
    ASSERT_EQ(MPI_Cart_shift(cart, 1, 1, &left, &right), MPI_SUCCESS);

    MPI_Datatype t = nullptr;
    MPI_Type_vector(2048, 16, 48, MPI_BYTE, &t); // 32 KiB packed > limit
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer sbuf(vcuda::MemorySpace::Device,
                     static_cast<std::size_t>(extent) + 16);
    SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                     static_cast<std::size_t>(extent) + 16);
    std::vector<std::byte> want(rbuf.size());
    MPI_Request reqs[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
    ASSERT_EQ(MPI_Send_init(sbuf.get(), 1, t, right, 9, cart, &reqs[0]),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Recv_init(rbuf.get(), 1, t, left, 9, cart, &reqs[1]),
              MPI_SUCCESS);
    for (int it = 0; it < 4; ++it) {
      if (it == 2) {
        // Change the plan and bump the model generation mid-stream: the
        // next Start must re-record each channel onto the 8 KiB chunks.
        MPI_Barrier(cart);
        if (crank == 0) {
          tempi::set_chunk_bytes_override(8192);
          tempi::tune::set_enabled(true);
          tempi::tune::observe(tempi::tune::Axis::D2H, 0, 1,
                               vcuda::us_to_ns(50.0));
          tempi::tune::observe(tempi::tune::Axis::D2H, 0, 1,
                               vcuda::us_to_ns(50.0));
          EXPECT_TRUE(tempi::tune::refresh_now());
          tempi::tune::set_enabled(false);
        }
        MPI_Barrier(cart);
      }
      const auto seed = [&](int origin) {
        return static_cast<std::uint32_t>(1000 * it + origin);
      };
      fill_pattern(sbuf.get(), sbuf.size(), seed(crank));
      std::memset(rbuf.get(), 0, rbuf.size());
      ASSERT_EQ(MPI_Startall(2, reqs), MPI_SUCCESS);
      ASSERT_EQ(MPI_Waitall(2, reqs, MPI_STATUSES_IGNORE), MPI_SUCCESS);
      // The payload must be the LEFT Cartesian neighbor's fresh pattern.
      fill_pattern(want.data(), want.size(), seed(left));
      EXPECT_EQ(reference_pack(rbuf.get(), 1, *t),
                reference_pack(want.data(), 1, *t))
          << "cart rank " << crank << " iteration " << it;
    }
    ASSERT_EQ(MPI_Request_free(&reqs[0]), MPI_SUCCESS);
    ASSERT_EQ(MPI_Request_free(&reqs[1]), MPI_SUCCESS);
    MPI_Type_free(&t);
    MPI_Comm_free(&cart);
    MPI_Finalize();
  });
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.persistent_init, 128u);  // one pair per rank
  EXPECT_EQ(stats.persistent_start, 512u); // 4 rounds x 2 channels x 64
  EXPECT_EQ(stats.model_refreezes, 128u);  // every channel re-recorded once
  EXPECT_EQ(tempi::topo::topo_stats().remaps, 64u);
  tempi::set_wire_chunk_limit(tempi::kMaxWireBytes);
  tempi::set_chunk_bytes_override(0);
}

TEST_F(TempiPersistent, TypeFreeWhileChannelLiveKeepsThePackerAlive) {
  // Regression for the MPI_Type_free-while-request-in-flight hazard: the
  // channel co-owns the packer, so a freed datatype's engine (and the
  // graphs recorded against it) must keep replaying until Request_free.
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(64, 8, 24, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 32);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 30, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
    } else {
      ASSERT_EQ(MPI_Recv_init(buf.get(), 1, t, 0, 30, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
    }
    // Free the datatype with the channel live; the raw-byte cross-check
    // still needs the shape, so keep an oracle duplicate alive.
    MPI_Datatype oracle = nullptr;
    ASSERT_EQ(MPI_Type_dup(t, &oracle), MPI_SUCCESS);
    MPI_Type_free(&t);
    ASSERT_EQ(t, MPI_DATATYPE_NULL);
    for (int it = 0; it < 3; ++it) {
      if (rank == 0) {
        fill_pattern(buf.get(), buf.size(), 200 + it);
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
        MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 31,
                 MPI_COMM_WORLD);
      } else {
        std::memset(buf.get(), 0, buf.size());
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
        std::vector<std::byte> raw(buf.size());
        MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 31,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_EQ(reference_pack(buf.get(), 1, *oracle),
                  reference_pack(raw.data(), 1, *oracle))
            << "iteration " << it;
      }
    }
    ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
    MPI_Type_free(&oracle);
    MPI_Finalize();
  });
}

TEST_F(TempiPersistent, KillSwitchForwardsToTheSystemPath) {
  tempi::set_persistent_enabled(false);
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(32, 8, 24, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 8);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 11);
      ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 40, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      EXPECT_FALSE(tempi::async::owns(req)); // a system request, not a channel
      ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 41,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      ASSERT_EQ(MPI_Recv_init(buf.get(), 1, t, 0, 40, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 41,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t));
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.persistent_init, 0u);
  EXPECT_GE(stats.persistent_forwarded, 2u);
  tempi::set_persistent_enabled(true);
}

TEST_F(TempiPersistent, EnvKillSwitchIsReadAtInstall) {
  tempi::uninstall();
  ASSERT_EQ(setenv("TEMPI_PERSISTENT", "0", 1), 0);
  tempi::install();
  EXPECT_FALSE(tempi::persistent_enabled());
  tempi::uninstall();
  ASSERT_EQ(setenv("TEMPI_PERSISTENT", "1", 1), 0);
  tempi::install();
  EXPECT_TRUE(tempi::persistent_enabled());
  ASSERT_EQ(unsetenv("TEMPI_PERSISTENT"), 0);
}

TEST_F(TempiPersistent, ChannelLeasesArePinnedUntilRequestFree) {
  sysmpi::ensure_self_context();
  tempi::reset_buffer_cache_stats();
  MPI_Datatype t = nullptr;
  MPI_Type_vector(64, 8, 24, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  SpaceBuffer buf(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
  const std::size_t before = tempi::buffer_cache_stats().leased_now;
  MPI_Request req = MPI_REQUEST_NULL;
  ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 0, 2, MPI_COMM_WORLD, &req),
            MPI_SUCCESS);
  // The channel pre-acquired its wire lease at init and keeps it pinned.
  EXPECT_GT(tempi::buffer_cache_stats().leased_now, before);
  ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
  // ... and releases every lease at free: the leak-check invariant the
  // uninstall drain enforces for un-freed channels.
  EXPECT_EQ(tempi::buffer_cache_stats().leased_now, before);
  MPI_Type_free(&t);
}

TEST_F(TempiPersistent, UninstallDrainsUnfreedChannelsLoudly) {
  sysmpi::ensure_self_context();
  MPI_Datatype t = nullptr;
  MPI_Type_vector(32, 8, 24, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  SpaceBuffer buf(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
  MPI_Request req = MPI_REQUEST_NULL;
  ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 0, 2, MPI_COMM_WORLD, &req),
            MPI_SUCCESS);
  EXPECT_EQ(tempi::async::persistent_open(), 1u);
  tempi::uninstall(); // contract: drops the channel, releasing its leases
  EXPECT_EQ(tempi::async::persistent_open(), 0u);
  EXPECT_EQ(tempi::buffer_cache_stats().leased_now, 0u);
  // `req` now dangles, per the uninstall contract; reinstall for TearDown.
  tempi::install();
  MPI_Type_free(&t);
}

TEST_F(TempiPersistent, RequestFreeReleasesAPlainIsendTicket) {
  // MPI_Request_free on a non-persistent TEMPI request is legal MPI
  // (fire-and-forget): the op must complete (the send is buffered) and
  // retire, not error out of the pool.
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(32, 8, 24, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 8);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 13);
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Isend(buf.get(), 1, t, 1, 85, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      ASSERT_TRUE(tempi::async::owns(req));
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
      EXPECT_EQ(req, MPI_REQUEST_NULL);
      EXPECT_EQ(tempi::async::in_flight(), 0u);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 86,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      MPI_Recv(buf.get(), 1, t, 0, 85, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 86,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t));
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPersistent, RequestFreeNeverBlocksOnUnmatchedReceives) {
  // Freeing a receive nobody will ever match must return immediately
  // (matching sys_Request_free), both for a plain Irecv ticket and for an
  // armed receive channel — the lazy match is simply discarded.
  sysmpi::ensure_self_context();
  MPI_Datatype t = nullptr;
  MPI_Type_vector(16, 4, 12, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  SpaceBuffer buf(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
  MPI_Request req = MPI_REQUEST_NULL;
  ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 95, MPI_COMM_WORLD, &req),
            MPI_SUCCESS);
  ASSERT_TRUE(tempi::async::owns(req));
  ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
  EXPECT_EQ(req, MPI_REQUEST_NULL);
  EXPECT_EQ(tempi::async::in_flight(), 0u);

  ASSERT_EQ(MPI_Recv_init(buf.get(), 1, t, 0, 96, MPI_COMM_WORLD, &req),
            MPI_SUCCESS);
  ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS); // armed, never matched
  ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
  EXPECT_EQ(req, MPI_REQUEST_NULL);
  EXPECT_EQ(tempi::async::persistent_open(), 0u);
  MPI_Type_free(&t);
}

TEST_F(TempiPersistent, TestallPreservesStatusesAcrossPartialPolls) {
  // Regression: an entry completed by an earlier flag=0 Testall poll must
  // keep the status that completion wrote — later polls count the
  // disarmed ticket complete without clobbering the slot.
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(24, 4, 12, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer a(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
    SpaceBuffer b(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
    if (rank == 0) {
      fill_pattern(a.get(), a.size(), 1);
      fill_pattern(b.get(), b.size(), 2);
      MPI_Send(a.get(), 1, t, 1, 64, MPI_COMM_WORLD);
      int seen = 0; // B departs only after the partial poll completed A
      MPI_Recv(&seen, 1, MPI_INT, 1, 65, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(b.get(), 1, t, 1, 66, MPI_COMM_WORLD);
    } else {
      MPI_Request reqs[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
      ASSERT_EQ(MPI_Recv_init(a.get(), 1, t, 0, 64, MPI_COMM_WORLD,
                              &reqs[0]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Recv_init(b.get(), 1, t, 0, 66, MPI_COMM_WORLD,
                              &reqs[1]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Startall(2, reqs), MPI_SUCCESS);
      int flag = 1;
      MPI_Status statuses[2];
      statuses[0].MPI_TAG = statuses[1].MPI_TAG = -7;
      // Poll until the partial sweep consumes A (B has not been sent).
      while (statuses[0].MPI_TAG != 64) {
        ASSERT_EQ(MPI_Testall(2, reqs, &flag, statuses), MPI_SUCCESS);
        ASSERT_EQ(flag, 0);
      }
      const int seen = 1;
      MPI_Send(&seen, 1, MPI_INT, 0, 65, MPI_COMM_WORLD);
      while (flag == 0) {
        ASSERT_EQ(MPI_Testall(2, reqs, &flag, statuses), MPI_SUCCESS);
      }
      EXPECT_EQ(statuses[0].MPI_TAG, 64); // survived the later polls
      EXPECT_EQ(statuses[1].MPI_TAG, 66);
      ASSERT_EQ(MPI_Request_free(&reqs[0]), MPI_SUCCESS);
      ASSERT_EQ(MPI_Request_free(&reqs[1]), MPI_SUCCESS);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPersistent, HostBufferChannelsForwardAndStillWork) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(16, 8, 24, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    // Pageable host buffers: TEMPI has nothing to accelerate, the system
    // persistent path must carry the traffic end to end.
    std::vector<std::byte> host(static_cast<std::size_t>(extent) + 8);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      fill_pattern(host.data(), host.size(), 77);
      ASSERT_EQ(MPI_Send_init(host.data(), 1, t, 1, 50, MPI_COMM_WORLD,
                              &req),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
      MPI_Send(host.data(), static_cast<int>(host.size()), MPI_BYTE, 1, 51,
               MPI_COMM_WORLD);
    } else {
      ASSERT_EQ(MPI_Recv_init(host.data(), 1, t, 0, 50, MPI_COMM_WORLD,
                              &req),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
      std::vector<std::byte> raw(host.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 51,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(host.data(), 1, *t),
                reference_pack(raw.data(), 1, *t));
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  EXPECT_GE(tempi::send_stats().persistent_forwarded, 2u);
}

TEST_F(TempiPersistent, ReplaySkipsPerKernelLaunches) {
  // The cost-model accounting claim: a frozen device-method send replays
  // its pack as ONE graph launch — zero cudaLaunchKernel calls after init.
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(64, 8, 24, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 8);
    if (rank == 0) {
      tempi::set_send_mode(tempi::SendMode::ForceDevice);
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 80, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      // The counters are process-wide, so measure while the receiver is
      // still parked behind the handshake below (the sends are buffered:
      // no recv needs to be posted for the arms to complete).
      const vcuda::Counters before = vcuda::counters();
      for (int it = 0; it < 4; ++it) {
        fill_pattern(buf.get(), buf.size(), it);
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      }
      const vcuda::Counters after = vcuda::counters();
      EXPECT_EQ(after.kernel_launches, before.kernel_launches);
      EXPECT_EQ(after.graph_launches, before.graph_launches + 4);
      EXPECT_EQ(after.graph_nodes_replayed, before.graph_nodes_replayed + 4);
      ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
      tempi::set_send_mode(tempi::SendMode::Auto);
      const int go = 1;
      MPI_Send(&go, 1, MPI_INT, 1, 81, MPI_COMM_WORLD);
    } else {
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 0, 81, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      for (int it = 0; it < 4; ++it) {
        MPI_Recv(buf.get(), 1, t, 0, 80, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPersistent, WaitsomeAndTestallHandlePersistentTickets) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(24, 4, 12, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer a(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
    SpaceBuffer b(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) + 8);
    MPI_Request reqs[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
    if (rank == 0) {
      fill_pattern(a.get(), a.size(), 1);
      fill_pattern(b.get(), b.size(), 2);
      ASSERT_EQ(MPI_Send_init(a.get(), 1, t, 1, 70, MPI_COMM_WORLD,
                              &reqs[0]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Send_init(b.get(), 1, t, 1, 71, MPI_COMM_WORLD,
                              &reqs[1]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Startall(2, reqs), MPI_SUCCESS);
      int outcount = 0;
      int indices[2] = {-1, -1};
      ASSERT_EQ(MPI_Waitsome(2, reqs, &outcount, indices,
                             MPI_STATUSES_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(outcount, 2); // armed sends are buffered: both complete
      // Regression: a completed channel is INACTIVE, and Waitsome must
      // ignore inactive persistent tickets like null slots — reporting
      // them again would livelock the standard drain loop. Waitany
      // likewise reports no active entry instead of "winning" a disarmed
      // channel forever.
      ASSERT_EQ(MPI_Waitsome(2, reqs, &outcount, indices,
                             MPI_STATUSES_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(outcount, MPI_UNDEFINED);
      int index = 0;
      ASSERT_EQ(MPI_Waitany(2, reqs, &index, MPI_STATUS_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(index, MPI_UNDEFINED);
      int flag = 0;
      ASSERT_EQ(MPI_Testany(2, reqs, &index, &flag, MPI_STATUS_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(flag, 1);
      EXPECT_EQ(index, MPI_UNDEFINED);
    } else {
      ASSERT_EQ(MPI_Recv_init(a.get(), 1, t, 0, 70, MPI_COMM_WORLD,
                              &reqs[0]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Recv_init(b.get(), 1, t, 0, 71, MPI_COMM_WORLD,
                              &reqs[1]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Startall(2, reqs), MPI_SUCCESS);
      // Statuses across partially-complete Testall sweeps are undefined
      // (entries completed in earlier sweeps re-test as inactive/empty),
      // so assert completion and handle survival only.
      int flag = 0;
      while (flag == 0) {
        ASSERT_EQ(MPI_Testall(2, reqs, &flag, MPI_STATUSES_IGNORE),
                  MPI_SUCCESS);
      }
      for (MPI_Request r : reqs) {
        EXPECT_NE(r, MPI_REQUEST_NULL);
      }
    }
    ASSERT_EQ(MPI_Request_free(&reqs[0]), MPI_SUCCESS);
    ASSERT_EQ(MPI_Request_free(&reqs[1]), MPI_SUCCESS);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

} // namespace
