#include "vcuda/costmodel.hpp"

#include <gtest/gtest.h>

namespace {

using vcuda::AccessPattern;
using vcuda::KernelCost;
using vcuda::MemorySpace;

TEST(StridedEfficiency, SaturatesAtGranularity) {
  EXPECT_DOUBLE_EQ(vcuda::strided_efficiency(128, 128.0), 1.0);
  EXPECT_DOUBLE_EQ(vcuda::strided_efficiency(256, 128.0), 1.0);
}

TEST(StridedEfficiency, ScalesBelowGranularity) {
  EXPECT_DOUBLE_EQ(vcuda::strided_efficiency(64, 128.0), 0.5);
  EXPECT_DOUBLE_EQ(vcuda::strided_efficiency(32, 128.0), 0.25);
}

TEST(StridedEfficiency, ContiguousSideIsFull) {
  // contiguous_bytes == 0 encodes "no strided runs on this side".
  EXPECT_DOUBLE_EQ(vcuda::strided_efficiency(0, 128.0), 1.0);
}

TEST(StridedEfficiency, FlooredForTinyBlocks) {
  EXPECT_GE(vcuda::strided_efficiency(1, 128.0), 1.0 / 128.0);
}

TEST(MemcpyDuration, MonotonicInSize) {
  const vcuda::CostParams &p = vcuda::cost_params();
  vcuda::VirtualNs prev = 0;
  for (std::size_t s = 1; s <= (1u << 24); s *= 16) {
    const vcuda::VirtualNs d =
        vcuda::memcpy_duration(p, s, vcuda::MemcpyKind::DeviceToHost, false);
    EXPECT_GE(d, prev) << "size " << s;
    prev = d;
  }
}

TEST(MemcpyDuration, PageablePenaltyApplies) {
  const vcuda::CostParams &p = vcuda::cost_params();
  const auto pinned =
      vcuda::memcpy_duration(p, 1 << 20, vcuda::MemcpyKind::HostToDevice,
                             false);
  const auto pageable =
      vcuda::memcpy_duration(p, 1 << 20, vcuda::MemcpyKind::HostToDevice,
                             true);
  EXPECT_GT(pageable, pinned);
}

TEST(MemcpyDuration, D2DIsFasterThanH2DForLargeCopies) {
  const vcuda::CostParams &p = vcuda::cost_params();
  EXPECT_LT(
      vcuda::memcpy_duration(p, 1 << 22, vcuda::MemcpyKind::DeviceToDevice,
                             false),
      vcuda::memcpy_duration(p, 1 << 22, vcuda::MemcpyKind::HostToDevice,
                             false));
}

KernelCost pack_kernel(std::size_t total, std::size_t block,
                       MemorySpace noncontig_space) {
  KernelCost c;
  c.total_bytes = total;
  c.src = AccessPattern{block, false, noncontig_space};
  c.dst = AccessPattern{0, true, noncontig_space == MemorySpace::Pinned
                                     ? MemorySpace::Pinned
                                     : MemorySpace::Device};
  return c;
}

TEST(KernelDuration, LargerBlocksAreFasterOnDevice) {
  // Paper Sec. 6.3: "larger contiguous blocks tend to be faster as
  // accesses become more coalesced".
  const vcuda::CostParams &p = vcuda::cost_params();
  const auto small =
      vcuda::kernel_duration(p, pack_kernel(1 << 22, 1, MemorySpace::Device));
  const auto mid =
      vcuda::kernel_duration(p, pack_kernel(1 << 22, 16, MemorySpace::Device));
  const auto big = vcuda::kernel_duration(
      p, pack_kernel(1 << 22, 128, MemorySpace::Device));
  EXPECT_GT(small, mid);
  EXPECT_GT(mid, big);
}

TEST(KernelDuration, DeviceSaturatesAt128B) {
  const vcuda::CostParams &p = vcuda::cost_params();
  const auto at128 = vcuda::kernel_duration(
      p, pack_kernel(1 << 22, 128, MemorySpace::Device));
  const auto at512 = vcuda::kernel_duration(
      p, pack_kernel(1 << 22, 512, MemorySpace::Device));
  EXPECT_EQ(at128, at512);
}

TEST(KernelDuration, OneShotSaturatesAt32B) {
  // Paper Sec. 6.3: one-shot performance is maximized at 32 B blocks.
  const vcuda::CostParams &p = vcuda::cost_params();
  const auto at32 = vcuda::kernel_duration(
      p, pack_kernel(1 << 22, 32, MemorySpace::Pinned));
  const auto at128 = vcuda::kernel_duration(
      p, pack_kernel(1 << 22, 128, MemorySpace::Pinned));
  EXPECT_EQ(at32, at128);
  const auto at8 = vcuda::kernel_duration(
      p, pack_kernel(1 << 22, 8, MemorySpace::Pinned));
  EXPECT_GT(at8, at32);
}

TEST(KernelDuration, UnpackSlowerThanPack) {
  // Paper Sec. 6.3: non-contiguous writes are slower than reads.
  const vcuda::CostParams &p = vcuda::cost_params();
  KernelCost pack = pack_kernel(1 << 22, 8, MemorySpace::Device);
  KernelCost unpack;
  unpack.total_bytes = pack.total_bytes;
  unpack.src = AccessPattern{0, false, MemorySpace::Device};
  unpack.dst = AccessPattern{8, true, MemorySpace::Device};
  EXPECT_GT(vcuda::kernel_duration(p, unpack),
            vcuda::kernel_duration(p, pack));
}

TEST(KernelDuration, SmallObjectsUnderutilizeGpu) {
  // Effective bandwidth for a 1 KiB object is far below peak; latency is
  // dominated by the fixed floor rather than bytes/bandwidth.
  const vcuda::CostParams &p = vcuda::cost_params();
  const auto tiny = vcuda::kernel_duration(
      p, pack_kernel(1024, 128, MemorySpace::Device));
  EXPECT_LT(tiny, vcuda::us_to_ns(10.0));
  EXPECT_GE(tiny, p.kernel_fixed_ns);
}

TEST(CostParams, OverrideAndRestore) {
  vcuda::CostParams custom = vcuda::cost_params();
  custom.device_gbps = 123.0;
  const vcuda::CostParams old = vcuda::set_cost_params(custom);
  EXPECT_DOUBLE_EQ(vcuda::cost_params().device_gbps, 123.0);
  vcuda::set_cost_params(old);
  EXPECT_DOUBLE_EQ(vcuda::cost_params().device_gbps, old.device_gbps);
}

} // namespace
