#include "test_helpers.hpp"
#include "vcuda/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

namespace {

using testing_helpers::SpaceBuffer;
using testing_helpers::fill_pattern;

TEST(VirtualClock, AdvanceAndWait) {
  vcuda::Timeline tl;
  EXPECT_EQ(tl.now(), 0u);
  tl.advance(100);
  EXPECT_EQ(tl.now(), 100u);
  tl.wait_until(50); // no going backwards
  EXPECT_EQ(tl.now(), 100u);
  tl.wait_until(250);
  EXPECT_EQ(tl.now(), 250u);
}

TEST(Stream, OpsSerialize) {
  vcuda::Stream s(0);
  EXPECT_EQ(s.enqueue(0, 10), 10u);
  EXPECT_EQ(s.enqueue(0, 10), 20u);    // queued behind the first
  EXPECT_EQ(s.enqueue(100, 10), 110u); // host ran ahead: starts at 100
}

TEST(MemcpyAsync, MovesBytesAndAdvancesTime) {
  SpaceBuffer src(vcuda::MemorySpace::Device, 4096);
  SpaceBuffer dst(vcuda::MemorySpace::Pinned, 4096);
  fill_pattern(src.get(), 4096);

  const vcuda::VirtualNs t0 = vcuda::virtual_now();
  vcuda::StreamHandle stream = vcuda::default_stream();
  ASSERT_EQ(vcuda::MemcpyAsync(dst.get(), src.get(), 4096,
                               vcuda::MemcpyKind::DeviceToHost, stream),
            vcuda::Error::Success);
  ASSERT_EQ(vcuda::StreamSynchronize(stream), vcuda::Error::Success);
  EXPECT_GT(vcuda::virtual_now(), t0);
  EXPECT_EQ(std::memcmp(src.get(), dst.get(), 4096), 0);
}

TEST(MemcpyAsync, DefaultKindInfersFromRegistry) {
  SpaceBuffer dev(vcuda::MemorySpace::Device, 128);
  SpaceBuffer host(vcuda::MemorySpace::Pinned, 128);
  fill_pattern(host.get(), 128, 7);
  ASSERT_EQ(vcuda::Memcpy(dev.get(), host.get(), 128,
                          vcuda::MemcpyKind::Default),
            vcuda::Error::Success);
  EXPECT_EQ(std::memcmp(dev.get(), host.get(), 128), 0);
}

TEST(MemcpyAsync, LargerCopiesTakeLonger) {
  SpaceBuffer a(vcuda::MemorySpace::Device, 1 << 20);
  SpaceBuffer b(vcuda::MemorySpace::Pinned, 1 << 20);
  vcuda::StreamHandle stream = vcuda::default_stream();

  const vcuda::VirtualNs t0 = vcuda::virtual_now();
  vcuda::MemcpyAsync(b.get(), a.get(), 64, vcuda::MemcpyKind::DeviceToHost,
                     stream);
  vcuda::StreamSynchronize(stream);
  const vcuda::VirtualNs small = vcuda::virtual_now() - t0;

  const vcuda::VirtualNs t1 = vcuda::virtual_now();
  vcuda::MemcpyAsync(b.get(), a.get(), 1 << 20,
                     vcuda::MemcpyKind::DeviceToHost, stream);
  vcuda::StreamSynchronize(stream);
  const vcuda::VirtualNs large = vcuda::virtual_now() - t1;

  EXPECT_GT(large, small);
  // 1 MiB at ~45 GB/s is ~23 us of wire time on top of the fixed overheads.
  EXPECT_GT(large, vcuda::us_to_ns(20.0));
}

TEST(StreamQuery, NotReadyUntilSync) {
  SpaceBuffer a(vcuda::MemorySpace::Device, 1 << 20);
  SpaceBuffer b(vcuda::MemorySpace::Device, 1 << 20);
  vcuda::StreamHandle stream = nullptr;
  ASSERT_EQ(vcuda::StreamCreate(&stream), vcuda::Error::Success);
  vcuda::MemcpyAsync(b.get(), a.get(), 1 << 20,
                     vcuda::MemcpyKind::DeviceToDevice, stream);
  EXPECT_EQ(vcuda::StreamQuery(stream), vcuda::Error::NotReady);
  vcuda::StreamSynchronize(stream);
  EXPECT_EQ(vcuda::StreamQuery(stream), vcuda::Error::Success);
  vcuda::StreamDestroy(stream);
}

TEST(Events, ElapsedTimeBracketsStreamWork) {
  SpaceBuffer a(vcuda::MemorySpace::Device, 1 << 20);
  SpaceBuffer b(vcuda::MemorySpace::Device, 1 << 20);
  vcuda::StreamHandle stream = nullptr;
  ASSERT_EQ(vcuda::StreamCreate(&stream), vcuda::Error::Success);
  vcuda::EventHandle start = nullptr, stop = nullptr;
  vcuda::EventCreate(&start);
  vcuda::EventCreate(&stop);

  vcuda::EventRecord(start, stream);
  vcuda::MemcpyAsync(b.get(), a.get(), 1 << 20,
                     vcuda::MemcpyKind::DeviceToDevice, stream);
  vcuda::EventRecord(stop, stream);
  vcuda::EventSynchronize(stop);

  float ms = -1.0f;
  ASSERT_EQ(vcuda::EventElapsedTime(&ms, start, stop),
            vcuda::Error::Success);
  EXPECT_GT(ms, 0.0f);
  vcuda::EventDestroy(start);
  vcuda::EventDestroy(stop);
  vcuda::StreamDestroy(stream);
}

TEST(Kernel, BodyRunsAndCostAccrues) {
  bool ran = false;
  vcuda::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {256, 1, 1};
  vcuda::KernelCost cost;
  cost.total_bytes = 1 << 20;
  cost.src = {128, false, vcuda::MemorySpace::Device};
  cost.dst = {0, true, vcuda::MemorySpace::Device};
  const vcuda::VirtualNs t0 = vcuda::virtual_now();
  ASSERT_EQ(vcuda::LaunchKernel(cfg, cost, vcuda::default_stream(),
                                [&ran] { ran = true; }),
            vcuda::Error::Success);
  vcuda::StreamSynchronize(vcuda::default_stream());
  EXPECT_TRUE(ran);
  EXPECT_GT(vcuda::virtual_now() - t0,
            vcuda::cost_params().kernel_launch_ns);
}

TEST(Kernel, OversizedBlockRejected) {
  vcuda::LaunchConfig cfg;
  cfg.block = {2048, 1, 1}; // > 1024 threads
  EXPECT_EQ(vcuda::LaunchKernel(cfg, vcuda::KernelCost{},
                                vcuda::default_stream(), [] {}),
            vcuda::Error::InvalidValue);
}

TEST(Memcpy2D, CopiesPitchedRows) {
  constexpr std::size_t kWidth = 96, kRows = 10, kSPitch = 128,
                        kDPitch = 256;
  SpaceBuffer src(vcuda::MemorySpace::Device, kSPitch * kRows);
  SpaceBuffer dst(vcuda::MemorySpace::Device, kDPitch * kRows);
  fill_pattern(src.get(), kSPitch * kRows);
  ASSERT_EQ(vcuda::Memcpy2DAsync(dst.get(), kDPitch, src.get(), kSPitch,
                                 kWidth, kRows,
                                 vcuda::MemcpyKind::DeviceToDevice,
                                 vcuda::default_stream()),
            vcuda::Error::Success);
  vcuda::StreamSynchronize(vcuda::default_stream());
  for (std::size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(std::memcmp(dst.bytes() + r * kDPitch,
                          src.bytes() + r * kSPitch, kWidth), 0)
        << "row " << r;
  }
}

TEST(Counters, TrackCalls) {
  vcuda::reset_counters();
  SpaceBuffer a(vcuda::MemorySpace::Device, 64);
  SpaceBuffer b(vcuda::MemorySpace::Device, 64);
  vcuda::MemcpyAsync(b.get(), a.get(), 64, vcuda::MemcpyKind::DeviceToDevice,
                     vcuda::default_stream());
  vcuda::StreamSynchronize(vcuda::default_stream());
  const vcuda::Counters c = vcuda::counters();
  EXPECT_EQ(c.memcpy_async_calls, 1u);
  EXPECT_EQ(c.stream_syncs, 1u);
  EXPECT_EQ(c.mallocs, 2u);
}

TEST(Graph, CaptureRecordsWithoutExecuting) {
  SpaceBuffer src(vcuda::MemorySpace::Device, 1024);
  SpaceBuffer dst(vcuda::MemorySpace::Device, 1024);
  fill_pattern(src.get(), 1024, 3);
  std::memset(dst.get(), 0, 1024);

  vcuda::StreamHandle stream = nullptr;
  ASSERT_EQ(vcuda::StreamCreate(&stream), vcuda::Error::Success);
  ASSERT_EQ(vcuda::GraphBeginCapture(stream), vcuda::Error::Success);
  EXPECT_TRUE(vcuda::StreamIsCapturing(stream));
  // One open capture per stream.
  EXPECT_EQ(vcuda::GraphBeginCapture(stream), vcuda::Error::InvalidValue);
  ASSERT_EQ(vcuda::MemcpyAsync(dst.get(), src.get(), 1024,
                               vcuda::MemcpyKind::DeviceToDevice, stream),
            vcuda::Error::Success);
  // Recorded, not executed: payload untouched, stream idle.
  EXPECT_NE(std::memcmp(dst.get(), src.get(), 1024), 0);
  EXPECT_EQ(stream->ready_at(), 0u);
  vcuda::GraphHandle graph = nullptr;
  ASSERT_EQ(vcuda::GraphEndCapture(stream, &graph), vcuda::Error::Success);
  EXPECT_FALSE(vcuda::StreamIsCapturing(stream));
  EXPECT_EQ(vcuda::GraphNodeCount(graph), 1u);

  // Replay moves the bytes and enqueues the node's device duration.
  ASSERT_EQ(vcuda::GraphLaunch(graph, stream), vcuda::Error::Success);
  EXPECT_EQ(std::memcmp(dst.get(), src.get(), 1024), 0);
  EXPECT_GT(stream->ready_at(), 0u);
  vcuda::StreamSynchronize(stream);

  ASSERT_EQ(vcuda::GraphDestroy(graph), vcuda::Error::Success);
  vcuda::StreamDestroy(stream);
}

TEST(Graph, ReplayChargesOneLaunchForTheWholeChain) {
  // Three kernels recorded once: the live path pays kernel_launch_ns per
  // kernel; the replay pays graph_launch_ns once, and each node runs with
  // the in-graph dispatch floor instead of the cold kernel_fixed_ns.
  const vcuda::CostParams &p = vcuda::cost_params();
  vcuda::StreamHandle stream = nullptr;
  ASSERT_EQ(vcuda::StreamCreate(&stream), vcuda::Error::Success);

  vcuda::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {32, 1, 1};
  vcuda::KernelCost cost;
  cost.total_bytes = 256;
  cost.src = {256, false, vcuda::MemorySpace::Device};
  cost.dst = {0, true, vcuda::MemorySpace::Device};

  int runs = 0;
  ASSERT_EQ(vcuda::GraphBeginCapture(stream), vcuda::Error::Success);
  const vcuda::VirtualNs capture_t0 = vcuda::virtual_now();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(vcuda::LaunchKernel(cfg, cost, stream, [&runs] { ++runs; }),
              vcuda::Error::Success);
  }
  const vcuda::VirtualNs capture_cost = vcuda::virtual_now() - capture_t0;
  vcuda::GraphHandle graph = nullptr;
  ASSERT_EQ(vcuda::GraphEndCapture(stream, &graph), vcuda::Error::Success);
  EXPECT_EQ(runs, 0); // bodies deferred to replay
  EXPECT_EQ(vcuda::GraphNodeCount(graph), 3u);
  EXPECT_EQ(capture_cost, 3 * p.graph_capture_node_ns);

  vcuda::reset_counters();
  const vcuda::VirtualNs t0 = vcuda::virtual_now();
  ASSERT_EQ(vcuda::GraphLaunch(graph, stream), vcuda::Error::Success);
  const vcuda::VirtualNs host_cost = vcuda::virtual_now() - t0;
  EXPECT_EQ(runs, 3);
  EXPECT_EQ(host_cost, p.graph_launch_ns); // one launch, not three
  const vcuda::Counters c = vcuda::counters();
  EXPECT_EQ(c.kernel_launches, 0u); // replays are not cold launches
  EXPECT_EQ(c.graph_launches, 1u);
  EXPECT_EQ(c.graph_nodes_replayed, 3u);

  // Device-side: each node swapped kernel_fixed_ns for graph_node_sched_ns.
  const vcuda::VirtualNs live_dur = vcuda::kernel_duration(p, cost);
  const vcuda::VirtualNs node_dur =
      live_dur - std::min(live_dur, p.kernel_fixed_ns) + p.graph_node_sched_ns;
  EXPECT_EQ(stream->ready_at(), t0 + p.graph_launch_ns + 3 * node_dur);

  // The pre-armed fence folds the stream in for stream_fence_ns, cheaper
  // than a cold synchronize.
  const vcuda::VirtualNs f0 = vcuda::virtual_now();
  ASSERT_EQ(vcuda::StreamFence(stream), vcuda::Error::Success);
  EXPECT_EQ(vcuda::virtual_now(), stream->ready_at() + p.stream_fence_ns);
  EXPECT_GE(vcuda::virtual_now(), f0);
  EXPECT_LT(p.stream_fence_ns, p.stream_sync_ns);

  ASSERT_EQ(vcuda::GraphDestroy(graph), vcuda::Error::Success);
  vcuda::StreamDestroy(stream);
}

TEST(Graph, LaunchOntoCapturingStreamIsRejected) {
  vcuda::StreamHandle stream = nullptr;
  ASSERT_EQ(vcuda::StreamCreate(&stream), vcuda::Error::Success);
  ASSERT_EQ(vcuda::GraphBeginCapture(stream), vcuda::Error::Success);
  vcuda::GraphHandle empty = nullptr;
  ASSERT_EQ(vcuda::GraphEndCapture(stream, &empty), vcuda::Error::Success);

  ASSERT_EQ(vcuda::GraphBeginCapture(stream), vcuda::Error::Success);
  EXPECT_EQ(vcuda::GraphLaunch(empty, stream), vcuda::Error::InvalidValue);
  vcuda::GraphHandle g2 = nullptr;
  ASSERT_EQ(vcuda::GraphEndCapture(stream, &g2), vcuda::Error::Success);
  EXPECT_EQ(vcuda::GraphLaunch(nullptr, stream), vcuda::Error::InvalidValue);
  EXPECT_EQ(vcuda::GraphEndCapture(stream, &g2), vcuda::Error::InvalidValue);

  vcuda::GraphDestroy(empty);
  vcuda::GraphDestroy(g2);
  vcuda::StreamDestroy(stream);
}

} // namespace
