// The system-measurement workflow (Sec. 6.3): measure_system() produces
// tables consistent with the built-in calibration, the file round-trips,
// and MPI_Init picks the file up.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/measure.hpp"
#include "tempi/tempi.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace {

/// Shared one-shot measurement (the full grid takes a few seconds).
const tempi::SystemPerf &measured() {
  static const tempi::SystemPerf perf = tempi::measure_system(3);
  return perf;
}

TEST(Measure, TransferTablesShowTheFig9aStructure) {
  const tempi::SystemPerf &p = measured();
  EXPECT_LT(p.cpu_cpu.query(8.0), p.gpu_gpu.query(8.0)); // floors
  EXPECT_GT(p.gpu_gpu.query(8.0), 5.0);
  EXPECT_GT(p.cpu_cpu.query(1 << 20), 50.0); // bandwidth regime
}

TEST(Measure, MeasuredMatchesBuiltinCalibration) {
  // The empirical measurement of the virtual platform must agree with the
  // analytic tables derived from the same cost model (within measurement
  // granularity): this ties the two model paths together.
  const tempi::SystemPerf &emp = measured();
  const tempi::SystemPerf ana = tempi::builtin_perf();
  for (const double size : {64.0, 4096.0, 262144.0}) {
    EXPECT_NEAR(emp.cpu_cpu.query(size), ana.cpu_cpu.query(size),
                0.25 * ana.cpu_cpu.query(size) + 1.0)
        << size;
    EXPECT_NEAR(emp.d2h.query(size), ana.d2h.query(size),
                0.25 * ana.d2h.query(size) + 1.0)
        << size;
  }
  for (const double block : {1.0, 32.0, 128.0}) {
    EXPECT_NEAR(emp.device_pack.query(block, 1 << 20),
                ana.device_pack.query(block, 1 << 20),
                0.3 * ana.device_pack.query(block, 1 << 20) + 2.0)
        << block;
  }
}

TEST(Measure, PackTablesShowBlockStructure) {
  const tempi::SystemPerf &p = measured();
  EXPECT_GT(p.device_pack.query(1.0, 1 << 22),
            p.device_pack.query(128.0, 1 << 22));
  EXPECT_GT(p.oneshot_unpack.query(4.0, 1 << 20),
            p.oneshot_pack.query(4.0, 1 << 20));
}

TEST(Measure, FileRoundtripAndInitLoad) {
  const std::string path = "test_measure_init.txt";
  ASSERT_TRUE(tempi::save_perf(measured(), path));

  // MPI_Init under the interposer should load this file.
  ::setenv("TEMPI_PERF_FILE", path.c_str(), 1);
  EXPECT_EQ(tempi::perf_file_path(), path);
  tempi::install();
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  sysmpi::run_ranks(cfg, [](int) {
    MPI_Init(nullptr, nullptr);
    MPI_Finalize();
  });
  tempi::uninstall();
  ::unsetenv("TEMPI_PERF_FILE");
  std::filesystem::remove(path);
}

TEST(Measure, DefaultPathWithoutEnv) {
  ::unsetenv("TEMPI_PERF_FILE");
  EXPECT_EQ(tempi::perf_file_path(), "tempi_perf.txt");
}

TEST(Measure, ModelFromMeasurementsSelectsLikeBuiltin) {
  const tempi::PerfModel empirical{measured()};
  const tempi::PerfModel analytic{};
  int agree = 0, total = 0;
  for (std::size_t block : {1u, 8u, 64u, 256u}) {
    for (std::size_t size : {1024u, 65536u, 1u << 20, 4u << 20}) {
      ++total;
      if (empirical.choose(block, size) == analytic.choose(block, size)) {
        ++agree;
      }
    }
  }
  // Near-unanimous agreement; boundary cells may flip.
  EXPECT_GE(agree, total - 2);
}

} // namespace
