// The Pipelined (chunked) method: correctness of multi-leg wire
// transfers, the injectable wire-chunk limit that lets tiny messages
// exercise the >limit multi-leg path, the regression that oversized sends
// now succeed instead of returning MPI_ERR_COUNT, TEMPI_CHUNK_BYTES-style
// chunk overrides, pipeline SendStats, the request-engine integration
// (Wait- and Test-driven chunk progress), and the Sendrecv decomposition.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/methods.hpp"
#include "tempi/tempi.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::reference_pack;
using testing_helpers::SpaceBuffer;

void run2(const std::function<void(int)> &body) {
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, body);
}

/// RAII guard: shrink the wire-chunk limit (and optionally force a chunk
/// size) for one test, restoring the defaults afterwards.
class PipelineConfigGuard {
public:
  explicit PipelineConfigGuard(std::size_t limit, std::size_t override = 0) {
    previous_limit_ = tempi::set_wire_chunk_limit(limit);
    tempi::set_chunk_bytes_override(override);
  }
  ~PipelineConfigGuard() {
    tempi::set_wire_chunk_limit(previous_limit_);
    tempi::set_chunk_bytes_override(0);
  }

private:
  std::size_t previous_limit_ = tempi::kMaxWireBytes;
};

class TempiPipeline : public ::testing::Test {
protected:
  void SetUp() override {
    tempi::install();
    // The exact memo/leg-count assertions here require a quiescent model:
    // with the tuner armed, per-leg observations from a cold send would
    // (correctly) refresh the tables and invalidate the memo mid-test.
    tempi::tune::set_enabled(false);
  }
  void TearDown() override {
    tempi::set_send_mode(tempi::SendMode::Auto);
    tempi::tune::set_enabled(true);
    tempi::tune::reset();
    tempi::uninstall();
  }
};

/// One strided exchange rank0 -> rank1 plus an MPI_BYTE cross-check of
/// the raw allocation, returning the send return code observed on rank 0.
void exchange_and_check(int vcount, int blocklen, int stride) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(vcount, blocklen, stride, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 23);
      ASSERT_EQ(MPI_Send(buf.get(), 1, t, 1, 7, MPI_COMM_WORLD),
                MPI_SUCCESS);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 8,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      MPI_Status status;
      ASSERT_EQ(MPI_Recv(buf.get(), 1, t, 0, 7, MPI_COMM_WORLD, &status),
                MPI_SUCCESS);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 7);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 8,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t));
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPipeline, ForcedPipelinedDeliversCorrectBytes) {
  tempi::set_send_mode(tempi::SendMode::ForcePipelined);
  tempi::reset_send_stats();
  exchange_and_check(256, 16, 48);
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.pipelined, 1u);
  // At least the data leg plus the terminator on the send side, and the
  // receiver's legs on top.
  EXPECT_GE(stats.pipeline_chunks, 4u);
}

TEST_F(TempiPipeline, TinyInjectedLimitSplitsIntoManyLegs) {
  // A 64 KiB wire ceiling on a ~48 KiB-per-leg budget: a 192 KiB packed
  // message must cross the wire as multiple ordered legs.
  PipelineConfigGuard guard(/*limit=*/64 * 1024);
  tempi::set_send_mode(tempi::SendMode::ForcePipelined);
  tempi::reset_send_stats();
  exchange_and_check(3 * 1024, 16, 48); // 3K blocks x 64 B = 192 KiB packed
  const tempi::SendStats stats = tempi::send_stats();
  // 192 KiB over <= 64 KiB legs: at least 3 sender data legs + terminator.
  EXPECT_GE(stats.pipeline_chunks, 8u); // sender legs + receiver legs
}

TEST_F(TempiPipeline, OversizedSendSucceedsInsteadOfErrCount) {
  // The regression the wire-chunk limit injection exists for: a packed
  // message larger than the (injected) single-leg ceiling used to fail
  // with MPI_ERR_COUNT; it must now be carried as multiple ordered legs —
  // in Auto mode, without any forced method.
  PipelineConfigGuard guard(/*limit=*/64 * 1024);
  tempi::set_send_mode(tempi::SendMode::Auto);
  tempi::reset_send_stats();
  exchange_and_check(4 * 1024, 32, 96); // 512 KiB packed > 64 KiB limit
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.pipelined, 1u);
  EXPECT_EQ(stats.oneshot + stats.device + stats.staged, 0u);
  EXPECT_GE(stats.pipeline_over_ceiling_bytes, 512u * 1024u);
}

TEST_F(TempiPipeline, ForcedMonolithicUpgradesAboveTheLimit) {
  // ForceDevice above the wire limit cannot be honored by one leg; the
  // gate upgrades it to Pipelined instead of returning MPI_ERR_COUNT.
  PipelineConfigGuard guard(/*limit=*/64 * 1024);
  tempi::set_send_mode(tempi::SendMode::ForceDevice);
  tempi::reset_send_stats();
  exchange_and_check(4 * 1024, 32, 96); // 512 KiB packed
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.pipelined, 1u);
  EXPECT_EQ(stats.device, 0u);
}

TEST_F(TempiPipeline, SingleUnsplittableBlockStillFailsLoudly) {
  // Chunks split at contiguous-block boundaries; one block bigger than
  // the wire limit keeps the historical MPI_ERR_COUNT.
  PipelineConfigGuard guard(/*limit=*/64 * 1024);
  tempi::set_send_mode(tempi::SendMode::ForcePipelined);
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      MPI_Datatype t = nullptr;
      // Two 128 KiB contiguous blocks: block_bytes > the 64 KiB limit.
      MPI_Type_vector(2, 32 * 1024, 40 * 1024, MPI_FLOAT, &t);
      MPI_Type_commit(&t);
      MPI_Aint lb = 0, extent = 0;
      MPI_Type_get_extent(t, &lb, &extent);
      SpaceBuffer buf(vcuda::MemorySpace::Device,
                      static_cast<std::size_t>(extent) + 64);
      EXPECT_EQ(MPI_Send(buf.get(), 1, t, 1, 0, MPI_COMM_WORLD),
                MPI_ERR_COUNT);
      MPI_Type_free(&t);
    }
    MPI_Finalize();
  });
}

TEST_F(TempiPipeline, ChunkOverrideControlsLegCount) {
  // The TEMPI_CHUNK_BYTES mechanism (set_chunk_bytes_override is the
  // programmatic face the env var is parsed into): a 16 KiB chunk on a
  // 96 KiB message makes 6 full sender legs plus the terminator.
  PipelineConfigGuard guard(/*limit=*/tempi::kMaxWireBytes,
                            /*override=*/16 * 1024);
  tempi::set_send_mode(tempi::SendMode::ForcePipelined);
  tempi::reset_send_stats();
  exchange_and_check(1536, 16, 48); // 96 KiB packed, 64 B objects
  const tempi::SendStats stats = tempi::send_stats();
  // 96 KiB / 16 KiB = 6 data legs + 1 empty terminator, on each side.
  EXPECT_EQ(stats.pipeline_chunks, 14u);
}

TEST_F(TempiPipeline, SteadyStatePipelinedSendsHitTheMethodMemo) {
  // Acceptance: pipelined selection must ride PR 2's memoization — after
  // the first send, Auto-mode selection is one atomic load (no model
  // lock), observable as method_memo_hits.
  PipelineConfigGuard guard(/*limit=*/64 * 1024);
  tempi::set_send_mode(tempi::SendMode::Auto);
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(4 * 1024, 8, 24, MPI_FLOAT, &t); // 128 KiB > limit
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 3);
      MPI_Send(buf.get(), 1, t, 1, 0, MPI_COMM_WORLD); // cold: model miss
      tempi::reset_send_stats();
      MPI_Send(buf.get(), 1, t, 1, 1, MPI_COMM_WORLD); // warm: memo hit
      const tempi::SendStats stats = tempi::send_stats();
      EXPECT_EQ(stats.pipelined, 1u);
      EXPECT_GE(stats.method_memo_hits, 1u);
      EXPECT_EQ(stats.model_cache_misses, 0u);
    } else {
      MPI_Recv(buf.get(), 1, t, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Recv(buf.get(), 1, t, 0, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPipeline, NonBlockingPipelinedWaitCompletes) {
  PipelineConfigGuard guard(/*limit=*/64 * 1024);
  tempi::set_send_mode(tempi::SendMode::ForcePipelined);
  tempi::reset_send_stats();
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(3 * 1024, 16, 48, MPI_FLOAT, &t); // 192 KiB packed
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 31);
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Isend(buf.get(), 1, t, 1, 5, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      EXPECT_EQ(req, MPI_REQUEST_NULL);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 6,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 5, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      MPI_Status status;
      ASSERT_EQ(MPI_Wait(&req, &status), MPI_SUCCESS);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 5);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 6,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t));
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  EXPECT_EQ(tempi::send_stats().isend_pipelined, 1u);
}

TEST_F(TempiPipeline, TestDrivesChunkProgressIncrementally) {
  // MPI_Test on a pipelined receive consumes the legs that have already
  // arrived and only reports completion after the terminating short leg.
  PipelineConfigGuard guard(/*limit=*/64 * 1024);
  tempi::set_send_mode(tempi::SendMode::ForcePipelined);
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(3 * 1024, 16, 48, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    if (rank == 1) {
      std::memset(buf.get(), 0, buf.size());
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Irecv(buf.get(), 1, t, 0, 9, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      // Nothing sent yet: Test must not complete (and must not block).
      int flag = 1;
      ASSERT_EQ(MPI_Test(&req, &flag, MPI_STATUS_IGNORE), MPI_SUCCESS);
      EXPECT_EQ(flag, 0);
      const int go = 1;
      MPI_Send(&go, 1, MPI_INT, 0, 10, MPI_COMM_WORLD);
      // Poll to completion: legs arrive as the sender progresses.
      while (flag == 0) {
        ASSERT_EQ(MPI_Test(&req, &flag, MPI_STATUS_IGNORE), MPI_SUCCESS);
      }
      EXPECT_EQ(req, MPI_REQUEST_NULL);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 11,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t));
    } else {
      fill_pattern(buf.get(), buf.size(), 47);
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 1, 10, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(buf.get(), 1, t, 1, 9, MPI_COMM_WORLD);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 11,
               MPI_COMM_WORLD);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

TEST_F(TempiPipeline, SendrecvOverlapsBothDirections) {
  // The Sendrecv decomposition: Isend + Irecv + Waitall, both directions
  // accelerated (and pipelined when over the injected limit).
  PipelineConfigGuard guard(/*limit=*/64 * 1024);
  tempi::set_send_mode(tempi::SendMode::Auto);
  tempi::reset_send_stats();
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(4 * 1024, 32, 96, MPI_FLOAT, &t); // 512 KiB packed
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer out(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    SpaceBuffer in(vcuda::MemorySpace::Device,
                   static_cast<std::size_t>(extent) + 64);
    fill_pattern(out.get(), out.size(),
                 static_cast<std::uint32_t>(100 + rank));
    std::memset(in.get(), 0, in.size());
    MPI_Status status;
    ASSERT_EQ(MPI_Sendrecv(out.get(), 1, t, 1 - rank, 60 + rank, in.get(), 1,
                           t, 1 - rank, 60 + (1 - rank), MPI_COMM_WORLD,
                           &status),
              MPI_SUCCESS);
    EXPECT_EQ(status.MPI_SOURCE, 1 - rank);
    // Cross-check the received strided bytes against the peer's pattern.
    SpaceBuffer expect(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(extent) + 64);
    fill_pattern(expect.get(), expect.size(),
                 static_cast<std::uint32_t>(100 + (1 - rank)));
    EXPECT_EQ(reference_pack(in.get(), 1, *t),
              reference_pack(expect.get(), 1, *t));
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  const tempi::SendStats stats = tempi::send_stats();
  // Both ranks' send halves went through the request engine as pipelined
  // non-blocking sends (512 KiB > the injected 64 KiB ceiling).
  EXPECT_EQ(stats.isend_pipelined, 2u);
  EXPECT_EQ(stats.oneshot + stats.device + stats.staged + stats.pipelined,
            0u);
}

TEST_F(TempiPipeline, RangedPackMatchesSliceOfFullPack) {
  // The plan-driven ranged launches underneath the chunk legs: packing
  // global blocks [first, first+n) — including ranges that start and end
  // mid-object — must equal the same slice of a full pack.
  sysmpi::ensure_self_context();
  MPI_Datatype t = nullptr;
  MPI_Type_vector(8, 4, 12, MPI_INT, &t); // 8 blocks/object, 16 B blocks
  MPI_Type_commit(&t);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  const auto packer = tempi::find_packer(t);
  ASSERT_NE(packer, nullptr);
  constexpr int kCount = 3;
  const auto blk = static_cast<std::size_t>(packer->wire_block_bytes());
  ASSERT_EQ(blk, 16u);
  const long long nblocks = packer->total_blocks(kCount);
  ASSERT_EQ(nblocks, 24);
  SpaceBuffer src(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent) * kCount + 64);
  fill_pattern(src.get(), src.size(), 77);
  SpaceBuffer full(vcuda::MemorySpace::Device, blk * nblocks);
  ASSERT_EQ(packer->pack(full.get(), src.get(), kCount,
                         vcuda::default_stream()),
            vcuda::Error::Success);
  for (const auto &[first, n] :
       {std::pair<long long, long long>{0, 5}, {5, 9}, {14, 10}, {0, 24}}) {
    SpaceBuffer chunk(vcuda::MemorySpace::Device, blk * n);
    ASSERT_EQ(packer->pack_range_async(chunk.get(), src.get(), first, n,
                                       vcuda::default_stream()),
              vcuda::Error::Success);
    vcuda::StreamSynchronize(vcuda::default_stream());
    EXPECT_EQ(std::memcmp(chunk.get(), full.bytes() + first * blk, blk * n),
              0)
        << "blocks [" << first << ", " << first + n << ")";
    // And the inverse: unpacking the chunk back lands the same blocks.
    SpaceBuffer back(vcuda::MemorySpace::Device,
                     static_cast<std::size_t>(extent) * kCount + 64);
    std::memset(back.get(), 0, back.size());
    ASSERT_EQ(packer->unpack_range_async(back.get(), chunk.get(), first, n,
                                         vcuda::default_stream()),
              vcuda::Error::Success);
    vcuda::StreamSynchronize(vcuda::default_stream());
    SpaceBuffer rechunk(vcuda::MemorySpace::Device, blk * n);
    ASSERT_EQ(packer->pack_range_async(rechunk.get(), back.get(), first, n,
                                       vcuda::default_stream()),
              vcuda::Error::Success);
    vcuda::StreamSynchronize(vcuda::default_stream());
    EXPECT_EQ(std::memcmp(rechunk.get(), chunk.get(), blk * n), 0);
  }
  MPI_Type_free(&t);
}

TEST_F(TempiPipeline, PipelinedEstimateBeatsMonolithicForHugeMessages) {
  // Model-level acceptance: for large *fragmented* messages — small
  // contiguous blocks, where pack/unpack bandwidth is comparable to the
  // wire so overlap has something to hide — the pipelined estimate with
  // the model-chosen chunk must beat every monolithic method by >= 1.3x
  // (the bench sweeps the whole block spectrum; here we pin the
  // 64 MiB / 8 B-block point).
  const tempi::PerfModel model;
  const double block = 8;
  const double total = 64.0 * 1024 * 1024;
  const auto pipe = model.best_pipelined(block, total);
  EXPECT_GT(pipe.chunk_bytes, 0u);
  double best_mono = 1e300;
  for (const tempi::Method m :
       {tempi::Method::OneShot, tempi::Method::Device,
        tempi::Method::Staged}) {
    best_mono = std::min(best_mono, model.estimate_us(m, block, total));
  }
  EXPECT_GE(best_mono / pipe.us, 1.3);
  // Within the wire limit choose_transfer keeps the monolithic wire
  // format (and its cache): the one-message framing is what tolerates a
  // peer that independently fell through to the system path. Under-limit
  // pipelining is the forced modes' opt-in.
  const auto under = model.choose_transfer(
      8, static_cast<std::size_t>(total));
  EXPECT_NE(under.method, tempi::Method::Pipelined);
  EXPECT_EQ(under.chunk_bytes, 0u);
  const auto small = model.choose_transfer(128, 1024);
  EXPECT_EQ(small.method, model.choose(128, 1024));
  EXPECT_EQ(small.chunk_bytes, 0u);
}

TEST_F(TempiPipeline, ChooseTransferForcedAboveTheLimit) {
  PipelineConfigGuard guard(/*limit=*/64 * 1024);
  const tempi::PerfModel model;
  // 1 MiB cannot ride one 64 KiB leg: Pipelined regardless of estimates.
  const auto choice = model.choose_transfer(64, 1024 * 1024);
  EXPECT_EQ(choice.method, tempi::Method::Pipelined);
  EXPECT_GT(choice.chunk_bytes, 0u);
  EXPECT_LE(choice.chunk_bytes, 64u * 1024u);
}

} // namespace
