// Point-to-point semantics on the thread-rank runtime: matching, wildcards,
// statuses, nonblocking ops, datatype sends, and the virtual-time floors of
// the CPU and CUDA-aware GPU paths.
#include "sysmpi/mpi.hpp"
#include "sysmpi/netmodel.hpp"
#include "sysmpi/world.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::SpaceBuffer;

void run2(const std::function<void(int)> &body) {
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1; // two virtual nodes
  sysmpi::run_ranks(cfg, body);
}

TEST(P2P, BlockingSendRecvMovesData) {
  run2([](int rank) {
    MPI_Init(nullptr, nullptr);
    std::vector<int> buf(1024);
    if (rank == 0) {
      std::iota(buf.begin(), buf.end(), 7);
      ASSERT_EQ(MPI_Send(buf.data(), 1024, MPI_INT, 1, 5, MPI_COMM_WORLD),
                MPI_SUCCESS);
    } else {
      MPI_Status status;
      ASSERT_EQ(MPI_Recv(buf.data(), 1024, MPI_INT, 0, 5, MPI_COMM_WORLD,
                         &status),
                MPI_SUCCESS);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 5);
      EXPECT_EQ(buf[0], 7);
      EXPECT_EQ(buf[1023], 7 + 1023);
    }
    MPI_Finalize();
  });
}

TEST(P2P, TagsMatchSelectively) {
  run2([](int rank) {
    if (rank == 0) {
      const int a = 100, b = 200;
      MPI_Send(&a, 1, MPI_INT, 1, 1, MPI_COMM_WORLD);
      MPI_Send(&b, 1, MPI_INT, 1, 2, MPI_COMM_WORLD);
    } else {
      int x = 0;
      // Receive the tag-2 message first even though tag-1 arrived first.
      MPI_Recv(&x, 1, MPI_INT, 0, 2, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(x, 200);
      MPI_Recv(&x, 1, MPI_INT, 0, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(x, 100);
    }
  });
}

TEST(P2P, AnySourceAndAnyTag) {
  run2([](int rank) {
    if (rank == 0) {
      const int v = 42;
      MPI_Send(&v, 1, MPI_INT, 1, 17, MPI_COMM_WORLD);
    } else {
      int x = 0;
      MPI_Status status;
      MPI_Recv(&x, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD,
               &status);
      EXPECT_EQ(x, 42);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 17);
    }
  });
}

TEST(P2P, FifoOrderPreservedPerPeer) {
  run2([](int rank) {
    constexpr int kN = 50;
    if (rank == 0) {
      for (int i = 0; i < kN; ++i) {
        MPI_Send(&i, 1, MPI_INT, 1, 3, MPI_COMM_WORLD);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        int x = -1;
        MPI_Recv(&x, 1, MPI_INT, 0, 3, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        EXPECT_EQ(x, i);
      }
    }
  });
}

TEST(P2P, TruncationIsAnError) {
  run2([](int rank) {
    if (rank == 0) {
      const int v[4] = {1, 2, 3, 4};
      MPI_Send(v, 4, MPI_INT, 1, 0, MPI_COMM_WORLD);
    } else {
      int x[2];
      EXPECT_EQ(MPI_Recv(x, 2, MPI_INT, 0, 0, MPI_COMM_WORLD,
                         MPI_STATUS_IGNORE),
                MPI_ERR_TRUNCATE);
    }
  });
}

TEST(P2P, ShorterMessageThanBufferIsFine) {
  run2([](int rank) {
    if (rank == 0) {
      const int v[2] = {5, 6};
      MPI_Send(v, 2, MPI_INT, 1, 0, MPI_COMM_WORLD);
    } else {
      int x[8] = {};
      MPI_Status status;
      ASSERT_EQ(MPI_Recv(x, 8, MPI_INT, 0, 0, MPI_COMM_WORLD, &status),
                MPI_SUCCESS);
      int count = -1;
      MPI_Get_count(&status, MPI_INT, &count);
      EXPECT_EQ(count, 2);
      EXPECT_EQ(x[1], 6);
      EXPECT_EQ(x[2], 0);
    }
  });
}

TEST(P2P, ProcNullIsNoop) {
  run2([](int rank) {
    int x = 3;
    EXPECT_EQ(MPI_Send(&x, 1, MPI_INT, MPI_PROC_NULL, 0, MPI_COMM_WORLD),
              MPI_SUCCESS);
    MPI_Status status;
    EXPECT_EQ(MPI_Recv(&x, 1, MPI_INT, MPI_PROC_NULL, 0, MPI_COMM_WORLD,
                       &status),
              MPI_SUCCESS);
    EXPECT_EQ(status.MPI_SOURCE, MPI_PROC_NULL);
    EXPECT_EQ(x, 3);
    (void)rank;
  });
}

TEST(P2P, SendrecvExchanges) {
  run2([](int rank) {
    const int mine = rank * 10 + 1;
    int theirs = -1;
    const int peer = 1 - rank;
    ASSERT_EQ(MPI_Sendrecv(&mine, 1, MPI_INT, peer, 8, &theirs, 1, MPI_INT,
                           peer, 8, MPI_COMM_WORLD, MPI_STATUS_IGNORE),
              MPI_SUCCESS);
    EXPECT_EQ(theirs, peer * 10 + 1);
  });
}

TEST(P2P, IsendIrecvWaitall) {
  run2([](int rank) {
    std::vector<double> out(256, rank + 1.5), in(256, 0.0);
    const int peer = 1 - rank;
    MPI_Request reqs[2];
    ASSERT_EQ(MPI_Irecv(in.data(), 256, MPI_DOUBLE, peer, 9, MPI_COMM_WORLD,
                        &reqs[0]),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Isend(out.data(), 256, MPI_DOUBLE, peer, 9, MPI_COMM_WORLD,
                        &reqs[1]),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Waitall(2, reqs, MPI_STATUSES_IGNORE), MPI_SUCCESS);
    EXPECT_EQ(reqs[0], MPI_REQUEST_NULL);
    EXPECT_DOUBLE_EQ(in[0], peer + 1.5);
  });
}

TEST(P2P, TestPollsWithoutBlocking) {
  run2([](int rank) {
    if (rank == 0) {
      // Wait for a go-signal so the Test-before-message case is exercised.
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 1, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      const int v = 11;
      MPI_Send(&v, 1, MPI_INT, 1, 2, MPI_COMM_WORLD);
    } else {
      int x = 0;
      MPI_Request req;
      MPI_Irecv(&x, 1, MPI_INT, 0, 2, MPI_COMM_WORLD, &req);
      int flag = -1;
      ASSERT_EQ(MPI_Test(&req, &flag, MPI_STATUS_IGNORE), MPI_SUCCESS);
      EXPECT_EQ(flag, 0); // nothing sent yet
      const int go = 1;
      MPI_Send(&go, 1, MPI_INT, 0, 1, MPI_COMM_WORLD);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
      EXPECT_EQ(x, 11);
    }
  });
}

TEST(P2P, DerivedTypeSendRecvScattersCorrectly) {
  run2([](int rank) {
    MPI_Datatype t = nullptr;
    ASSERT_EQ(MPI_Type_vector(16, 4, 12, MPI_BYTE, &t), MPI_SUCCESS);
    ASSERT_EQ(MPI_Type_commit(&t), MPI_SUCCESS);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);

    std::vector<std::byte> buf(static_cast<std::size_t>(extent));
    if (rank == 0) {
      fill_pattern(buf.data(), buf.size(), 3);
      MPI_Send(buf.data(), 1, t, 1, 0, MPI_COMM_WORLD);
      // Also ship the raw buffer so the receiver can cross-check.
      MPI_Send(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 1, 1,
               MPI_COMM_WORLD);
    } else {
      MPI_Recv(buf.data(), 1, t, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 1,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(testing_helpers::reference_pack(buf.data(), 1, *t),
                testing_helpers::reference_pack(raw.data(), 1, *t));
    }
    MPI_Type_free(&t);
  });
}

TEST(P2P, GpuFloorExceedsCpuFloor) {
  // Paper Fig. 9a: ~6 us CUDA-aware floor vs ~1.3 us pinned-host floor.
  run2([](int rank) {
    SpaceBuffer host(vcuda::MemorySpace::Pinned, 8);
    SpaceBuffer dev(vcuda::MemorySpace::Device, 8);
    const int peer = 1 - rank;

    auto half_pingpong = [&](void *buf) {
      const vcuda::VirtualNs t0 = vcuda::virtual_now();
      if (rank == 0) {
        MPI_Send(buf, 8, MPI_BYTE, peer, 0, MPI_COMM_WORLD);
        MPI_Recv(buf, 8, MPI_BYTE, peer, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
      } else {
        MPI_Recv(buf, 8, MPI_BYTE, peer, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
        MPI_Send(buf, 8, MPI_BYTE, peer, 0, MPI_COMM_WORLD);
      }
      return vcuda::ns_to_us(vcuda::virtual_now() - t0) / 2.0;
    };

    const double cpu_us = half_pingpong(host.get());
    const double gpu_us = half_pingpong(dev.get());
    if (rank == 0) {
      EXPECT_LT(cpu_us, 3.0);
      EXPECT_GT(gpu_us, 5.0);
      EXPECT_LT(gpu_us, 12.0);
    }
  });
}

TEST(P2P, IntraNodeFasterThanInterNode) {
  std::array<double, 2> half{0.0, 0.0};
  for (const int rpn : {1, 2}) {
    sysmpi::RunConfig cfg;
    cfg.ranks = 2;
    cfg.ranks_per_node = rpn;
    sysmpi::run_ranks(cfg, [&, rpn](int rank) {
      std::vector<std::byte> buf(1 << 16);
      const vcuda::VirtualNs t0 = vcuda::virtual_now();
      if (rank == 0) {
        MPI_Send(buf.data(), 1 << 16, MPI_BYTE, 1, 0, MPI_COMM_WORLD);
        MPI_Recv(buf.data(), 1 << 16, MPI_BYTE, 1, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
        half[rpn - 1] = vcuda::ns_to_us(vcuda::virtual_now() - t0) / 2.0;
      } else {
        MPI_Recv(buf.data(), 1 << 16, MPI_BYTE, 0, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
        MPI_Send(buf.data(), 1 << 16, MPI_BYTE, 0, 0, MPI_COMM_WORLD);
      }
    });
  }
  EXPECT_LT(half[1], half[0]); // same node beats cross node
}

TEST(P2P, ManyRanksRing) {
  sysmpi::RunConfig cfg;
  cfg.ranks = 8;
  cfg.ranks_per_node = 2;
  sysmpi::run_ranks(cfg, [](int rank) {
    int size = 0;
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int me = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &me);
    EXPECT_EQ(me, rank);
    const int next = (rank + 1) % size;
    const int prev = (rank + size - 1) % size;
    int token = rank;
    int got = -1;
    MPI_Sendrecv(&token, 1, MPI_INT, next, 0, &got, 1, MPI_INT, prev, 0,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    EXPECT_EQ(got, prev);
  });
}

TEST(P2P, PersistentSendRecvReArmAcrossIterations) {
  run2([](int rank) {
    MPI_Init(nullptr, nullptr);
    std::vector<int> buf(256);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      ASSERT_EQ(MPI_Send_init(buf.data(), 256, MPI_INT, 1, 9, MPI_COMM_WORLD,
                              &req),
                MPI_SUCCESS);
      for (int it = 0; it < 3; ++it) {
        std::iota(buf.begin(), buf.end(), it * 1000);
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
        EXPECT_NE(req, MPI_REQUEST_NULL); // persistent handles survive
      }
    } else {
      ASSERT_EQ(MPI_Recv_init(buf.data(), 256, MPI_INT, 0, 9, MPI_COMM_WORLD,
                              &req),
                MPI_SUCCESS);
      for (int it = 0; it < 3; ++it) {
        std::fill(buf.begin(), buf.end(), -1);
        ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
        MPI_Status status;
        ASSERT_EQ(MPI_Wait(&req, &status), MPI_SUCCESS);
        EXPECT_EQ(status.MPI_SOURCE, 0);
        EXPECT_EQ(status.MPI_TAG, 9);
        EXPECT_EQ(buf[0], it * 1000);
        EXPECT_EQ(buf[255], it * 1000 + 255);
      }
    }
    ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
    EXPECT_EQ(req, MPI_REQUEST_NULL);
    MPI_Finalize();
  });
}

TEST(P2P, PersistentStartValidation) {
  sysmpi::ensure_self_context();
  int x = 0;
  MPI_Request req = MPI_REQUEST_NULL;
  // Start on a non-persistent request (a plain Isend's) is erroneous.
  ASSERT_EQ(MPI_Isend(&x, 1, MPI_INT, 0, 1, MPI_COMM_WORLD, &req),
            MPI_SUCCESS);
  EXPECT_EQ(MPI_Start(&req), MPI_ERR_ARG);
  // Drain the self-send so the mailbox stays clean.
  int y = 0;
  MPI_Recv(&y, 1, MPI_INT, 0, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
  // Start on an armed persistent request is erroneous too.
  ASSERT_EQ(MPI_Send_init(&x, 1, MPI_INT, 0, 2, MPI_COMM_WORLD, &req),
            MPI_SUCCESS);
  ASSERT_EQ(MPI_Start(&req), MPI_SUCCESS);
  EXPECT_EQ(MPI_Start(&req), MPI_ERR_ARG);
  ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
  // Inactive again: Wait completes immediately with an empty status...
  MPI_Status status;
  status.MPI_SOURCE = 123;
  ASSERT_EQ(MPI_Wait(&req, &status), MPI_SUCCESS);
  EXPECT_EQ(status.MPI_SOURCE, -1);
  // ... while the *any/*some sweeps IGNORE inactive persistent requests
  // like null slots (a drain loop must not rediscover them forever).
  int flag = 0, index = 0;
  ASSERT_EQ(MPI_Testany(1, &req, &index, &flag, MPI_STATUS_IGNORE),
            MPI_SUCCESS);
  EXPECT_EQ(flag, 1);
  EXPECT_EQ(index, MPI_UNDEFINED);
  int outcount = 0, indices[1] = {-1};
  ASSERT_EQ(MPI_Testsome(1, &req, &outcount, indices, MPI_STATUSES_IGNORE),
            MPI_SUCCESS);
  EXPECT_EQ(outcount, MPI_UNDEFINED);
  ASSERT_EQ(MPI_Waitany(1, &req, &index, MPI_STATUS_IGNORE), MPI_SUCCESS);
  EXPECT_EQ(index, MPI_UNDEFINED);
  ASSERT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
  MPI_Recv(&y, 1, MPI_INT, 0, 2, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
}

TEST(P2P, WaitsomeReturnsEveryCompletionOfTheSweep) {
  run2([](int rank) {
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      int a = 11, b = 22;
      MPI_Send(&a, 1, MPI_INT, 1, 1, MPI_COMM_WORLD);
      MPI_Send(&b, 1, MPI_INT, 1, 2, MPI_COMM_WORLD);
    } else {
      int a = 0, b = 0;
      MPI_Request reqs[3] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL,
                             MPI_REQUEST_NULL};
      ASSERT_EQ(MPI_Irecv(&a, 1, MPI_INT, 0, 1, MPI_COMM_WORLD, &reqs[0]),
                MPI_SUCCESS);
      ASSERT_EQ(MPI_Irecv(&b, 1, MPI_INT, 0, 2, MPI_COMM_WORLD, &reqs[2]),
                MPI_SUCCESS);
      int outcount = 0;
      int indices[3] = {-1, -1, -1};
      MPI_Status statuses[3];
      int got = 0;
      while (got < 2) {
        ASSERT_EQ(MPI_Waitsome(3, reqs, &outcount, indices, statuses),
                  MPI_SUCCESS);
        ASSERT_NE(outcount, MPI_UNDEFINED);
        ASSERT_GT(outcount, 0);
        got += outcount;
      }
      EXPECT_EQ(a, 11);
      EXPECT_EQ(b, 22);
      for (MPI_Request r : reqs) {
        EXPECT_EQ(r, MPI_REQUEST_NULL);
      }
      // Nothing active left: MPI_UNDEFINED.
      ASSERT_EQ(MPI_Waitsome(3, reqs, &outcount, indices, statuses),
                MPI_SUCCESS);
      EXPECT_EQ(outcount, MPI_UNDEFINED);
    }
    MPI_Finalize();
  });
}

TEST(P2P, TestallTestanyTestsomeProgressMixedArrays) {
  run2([](int rank) {
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 1, 50, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      int v = 33;
      MPI_Send(&v, 1, MPI_INT, 1, 51, MPI_COMM_WORLD);
    } else {
      int v = 0;
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Irecv(&v, 1, MPI_INT, 0, 51, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
      // Nothing sent yet: Testany reports no completion; Testall stays 0;
      // Testsome returns an empty completion set.
      int flag = 1, index = 0;
      ASSERT_EQ(MPI_Testany(1, &req, &index, &flag, MPI_STATUS_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(flag, 0);
      ASSERT_EQ(MPI_Testall(1, &req, &flag, MPI_STATUSES_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(flag, 0);
      int outcount = -1, indices[1] = {-1};
      ASSERT_EQ(MPI_Testsome(1, &req, &outcount, indices,
                             MPI_STATUSES_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(outcount, 0);
      const int go = 1;
      MPI_Send(&go, 1, MPI_INT, 0, 50, MPI_COMM_WORLD);
      while (flag == 0) {
        ASSERT_EQ(MPI_Testany(1, &req, &index, &flag, MPI_STATUS_IGNORE),
                  MPI_SUCCESS);
      }
      EXPECT_EQ(index, 0);
      EXPECT_EQ(v, 33);
      EXPECT_EQ(req, MPI_REQUEST_NULL);
      // All-null array: Testany flags complete with MPI_UNDEFINED, and
      // Testsome reports MPI_UNDEFINED, per MPI.
      ASSERT_EQ(MPI_Testany(1, &req, &index, &flag, MPI_STATUS_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(flag, 1);
      EXPECT_EQ(index, MPI_UNDEFINED);
      ASSERT_EQ(MPI_Testsome(1, &req, &outcount, indices,
                             MPI_STATUSES_IGNORE),
                MPI_SUCCESS);
      EXPECT_EQ(outcount, MPI_UNDEFINED);
    }
    MPI_Finalize();
  });
}

} // namespace
