// The halo mini-app against a scalar reference: a host-side oracle
// computes every ghost cell directly from the owning neighbor's interior,
// for arbitrary rank grids (including the aliasing cases px<=2 and the
// self-neighbor case px==1), radii, and brick shapes.
#include "halo/halo.hpp"
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/tempi.hpp"
#include "vcuda/runtime.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

namespace {

using Grid = std::vector<double>;

struct Layout {
  halo::Config cfg;
  [[nodiscard]] int ax() const { return cfg.nx + 2 * cfg.radius; }
  [[nodiscard]] int ay() const { return cfg.ny + 2 * cfg.radius; }
  [[nodiscard]] int az() const { return cfg.nz + 2 * cfg.radius; }
  [[nodiscard]] std::size_t cells() const {
    return static_cast<std::size_t>(ax()) * ay() * az() * cfg.vals;
  }
  [[nodiscard]] std::size_t idx(int x, int y, int z, int v) const {
    return ((static_cast<std::size_t>(z) * ay() + y) * ax() + x) * cfg.vals +
           v;
  }
};

int wrap(int v, int n) { return (v % n + n) % n; }

int rank_at(const halo::Config &c, int x, int y, int z) {
  return (wrap(z, c.pz) * c.py + wrap(y, c.py)) * c.px + wrap(x, c.px);
}

/// Value of interior cell (x,y,z,v) of `rank` — deterministic function so
/// the oracle needs no communication. Coordinates are interior-relative.
double cell_value(int rank, int x, int y, int z, int v) {
  return rank * 1e6 + x * 1e4 + y * 1e2 + z + v * 0.25;
}

/// Fill a rank's grid: interior patterned, ghosts poisoned.
void init_grid(const Layout &lay, int rank, Grid &g) {
  const int r = lay.cfg.radius;
  g.assign(lay.cells(), -1.0);
  for (int z = 0; z < lay.cfg.nz; ++z) {
    for (int y = 0; y < lay.cfg.ny; ++y) {
      for (int x = 0; x < lay.cfg.nx; ++x) {
        for (int v = 0; v < lay.cfg.vals; ++v) {
          g[lay.idx(x + r, y + r, z + r, v)] = cell_value(rank, x, y, z, v);
        }
      }
    }
  }
}

/// The oracle: the expected value at any local coordinate (ghosts
/// included) is the periodic-global owner's interior value.
double expected_at(const Layout &lay, int rank, int lx, int ly, int lz,
                   int v) {
  const halo::Config &c = lay.cfg;
  const int r = c.radius;
  const int rx = rank % c.px, ry = (rank / c.px) % c.py,
            rz = rank / (c.px * c.py);
  // Global interior coordinate of this local cell.
  const int gx = wrap(rx * c.nx + (lx - r), c.px * c.nx);
  const int gy = wrap(ry * c.ny + (ly - r), c.py * c.ny);
  const int gz = wrap(rz * c.nz + (lz - r), c.pz * c.nz);
  const int owner = rank_at(c, gx / c.nx, gy / c.ny, gz / c.nz);
  return cell_value(owner, gx % c.nx, gy % c.ny, gz % c.nz, v);
}

/// Run one exchange on every rank; returns the final grids.
std::vector<Grid> run_exchange(const halo::Config &cfg, bool with_tempi) {
  const Layout lay{cfg};
  std::vector<Grid> grids(static_cast<std::size_t>(cfg.ranks()));
  if (with_tempi) {
    tempi::install();
  }
  sysmpi::RunConfig rc;
  rc.ranks = cfg.ranks();
  rc.ranks_per_node = 6;
  sysmpi::run_ranks(rc, [&](int) {
    MPI_Init(nullptr, nullptr);
    void *dev = nullptr;
    vcuda::Malloc(&dev, cfg.grid_bytes());
    {
      halo::Exchanger ex(cfg, MPI_COMM_WORLD);
      // Grid ownership follows the Cartesian rank: with reorder=1 the
      // exchanger may have re-placed this process in the rank grid.
      const int pos = ex.rank();
      Grid host;
      init_grid(lay, pos, host);
      std::memcpy(dev, host.data(), cfg.grid_bytes());
      ex.exchange(dev);
      grids[static_cast<std::size_t>(pos)].resize(lay.cells());
      std::memcpy(grids[static_cast<std::size_t>(pos)].data(), dev,
                  cfg.grid_bytes());
    }
    vcuda::Free(dev);
    MPI_Finalize();
  });
  if (with_tempi) {
    tempi::uninstall();
  }
  return grids;
}

/// Check every cell of every rank against the oracle. Ghost *corners* of
/// width r are covered too — they travel via the diagonal neighbors.
void check_against_oracle(const halo::Config &cfg,
                          const std::vector<Grid> &grids) {
  const Layout lay{cfg};
  for (int rank = 0; rank < cfg.ranks(); ++rank) {
    const Grid &g = grids[static_cast<std::size_t>(rank)];
    for (int z = 0; z < lay.az(); ++z) {
      for (int y = 0; y < lay.ay(); ++y) {
        for (int x = 0; x < lay.ax(); ++x) {
          for (int v = 0; v < cfg.vals; ++v) {
            ASSERT_DOUBLE_EQ(g[lay.idx(x, y, z, v)],
                             expected_at(lay, rank, x, y, z, v))
                << "rank " << rank << " cell (" << x << "," << y << "," << z
                << "," << v << ")";
          }
        }
      }
    }
  }
}

class HaloOracle
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, bool>> {
};

TEST_P(HaloOracle, EveryGhostCellIsCorrect) {
  const auto [px, py, pz, radius, with_tempi] = GetParam();
  halo::Config cfg;
  cfg.nx = 5;
  cfg.ny = 4;
  cfg.nz = 3; // non-cubic brick: catches transposed-dimension bugs
  cfg.vals = 2;
  cfg.radius = radius;
  cfg.px = px;
  cfg.py = py;
  cfg.pz = pz;
  check_against_oracle(cfg, run_exchange(cfg, with_tempi));
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndRadii, HaloOracle,
    ::testing::Values(
        // Aliasing-heavy cases: width-1 and width-2 periodic dimensions.
        std::make_tuple(1, 1, 1, 1, true),
        std::make_tuple(2, 1, 1, 1, true),
        std::make_tuple(2, 2, 1, 1, true),
        std::make_tuple(2, 2, 2, 1, true),
        // No aliasing.
        std::make_tuple(3, 3, 3, 1, true),
        // Mixed widths and a larger radius.
        std::make_tuple(3, 2, 1, 1, true),
        std::make_tuple(2, 2, 1, 2, true),
        std::make_tuple(3, 1, 2, 1, true),
        // Baseline engine must satisfy the same oracle.
        std::make_tuple(2, 2, 1, 1, false),
        std::make_tuple(3, 2, 1, 2, false)));

TEST(HaloOracleEdge, RadiusEqualsBrick) {
  // radius == nx: the entire interior is one big face; the exchange must
  // still satisfy the oracle (each ghost shell is a full neighbor brick).
  halo::Config cfg;
  cfg.nx = cfg.ny = cfg.nz = 2;
  cfg.vals = 1;
  cfg.radius = 2;
  cfg.px = 2;
  cfg.py = 1;
  cfg.pz = 1;
  check_against_oracle(cfg, run_exchange(cfg, true));
}

} // namespace
