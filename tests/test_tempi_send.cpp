// End-to-end datatype-accelerated MPI_Send/MPI_Recv between two ranks:
// correctness for every packing method, model-based auto selection, the
// baseline comparison (Fig. 11), and the latency floor structure.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/tempi.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::reference_pack;
using testing_helpers::SpaceBuffer;

void run2(const std::function<void(int)> &body) {
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, body);
}

/// One send/recv of a strided device object rank0 -> rank1; returns the
/// receiver-observed latency and verifies bytes, for a given send mode.
void exchange_and_check(tempi::SendMode mode, int vcount, int blocklen,
                        int stride_elems, double *latency_us = nullptr) {
  tempi::set_send_mode(mode);
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(vcount, blocklen, stride_elems, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);

    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 11);
      // Warm-up round: populates TEMPI's intermediate-buffer caches so the
      // measured round reflects steady-state latency, as in the paper's
      // iterated ping-pongs.
      MPI_Send(buf.get(), 1, t, 1, 41, MPI_COMM_WORLD);
      int ack = 0;
      MPI_Recv(&ack, 1, MPI_INT, 1, 44, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(buf.get(), 1, t, 1, 42, MPI_COMM_WORLD);
      // Cross-check channel: the raw allocation as plain bytes.
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 43,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      MPI_Status status;
      MPI_Recv(buf.get(), 1, t, 0, 41, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      const int ack = 1;
      MPI_Send(&ack, 1, MPI_INT, 0, 44, MPI_COMM_WORLD);
      const vcuda::VirtualNs t0 = vcuda::virtual_now();
      ASSERT_EQ(MPI_Recv(buf.get(), 1, t, 0, 42, MPI_COMM_WORLD, &status),
                MPI_SUCCESS);
      const vcuda::VirtualNs t1 = vcuda::virtual_now();
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 42);

      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 43,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), 1, *t),
                reference_pack(raw.data(), 1, *t))
          << "mode " << static_cast<int>(mode);
      if (latency_us != nullptr) {
        *latency_us = vcuda::ns_to_us(t1 - t0);
      }
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::set_send_mode(tempi::SendMode::Auto);
}

class TempiSend : public ::testing::Test {
protected:
  void SetUp() override { tempi::install(); }
  void TearDown() override {
    tempi::set_send_mode(tempi::SendMode::Auto);
    tempi::uninstall();
  }
};

TEST_F(TempiSend, DeviceMethodDeliversCorrectBytes) {
  exchange_and_check(tempi::SendMode::ForceDevice, 64, 8, 24);
}

TEST_F(TempiSend, OneShotMethodDeliversCorrectBytes) {
  exchange_and_check(tempi::SendMode::ForceOneShot, 64, 8, 24);
}

TEST_F(TempiSend, StagedMethodDeliversCorrectBytes) {
  exchange_and_check(tempi::SendMode::ForceStaged, 64, 8, 24);
}

TEST_F(TempiSend, AutoDeliversCorrectBytes) {
  exchange_and_check(tempi::SendMode::Auto, 128, 2, 10);
}

TEST_F(TempiSend, SystemModeStillCorrectJustSlow) {
  exchange_and_check(tempi::SendMode::System, 32, 4, 12);
}

TEST_F(TempiSend, AutoPicksOneShotForSmallObjects) {
  tempi::reset_send_stats();
  // ~1 KiB object with 64 B blocks: the small-object regime.
  exchange_and_check(tempi::SendMode::Auto, 16, 16, 32);
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.oneshot, 2u); // warm-up + measured round
  EXPECT_EQ(stats.device, 0u);
}

TEST_F(TempiSend, AutoPicksDeviceForLargeSmallBlockObjects) {
  tempi::reset_send_stats();
  // 4 MiB object of 4 B blocks: the large/fragmented regime.
  exchange_and_check(tempi::SendMode::Auto, 1 << 20, 1, 4);
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.device, 2u); // warm-up + measured round
  EXPECT_EQ(stats.oneshot, 0u);
}

TEST_F(TempiSend, AutoTracksTheFasterForcedMethod) {
  // Fig. 11b: auto should be within a whisker of min(one-shot, device).
  for (const auto &[vcount, blocklen] :
       {std::pair{512, 8}, std::pair{2048, 64}, std::pair{64, 4}}) {
    double oneshot = 0.0, device = 0.0, autosel = 0.0;
    exchange_and_check(tempi::SendMode::ForceOneShot, vcount, blocklen,
                       blocklen * 2, &oneshot);
    exchange_and_check(tempi::SendMode::ForceDevice, vcount, blocklen,
                       blocklen * 2, &device);
    exchange_and_check(tempi::SendMode::Auto, vcount, blocklen, blocklen * 2,
                       &autosel);
    const double best = std::min(oneshot, device);
    EXPECT_LE(autosel, best * 1.10 + 3.0)
        << "vcount " << vcount << " blocklen " << blocklen << ": auto "
        << autosel << " vs best " << best;
  }
}

TEST_F(TempiSend, MassiveSpeedupOverBaselineForFragmentedObjects) {
  // The Fig. 11a headline: fragmented device objects are catastrophically
  // slow through the baseline and fast through TEMPI.
  double baseline = 0.0, accelerated = 0.0;
  exchange_and_check(tempi::SendMode::System, 8192, 1, 4, &baseline);
  exchange_and_check(tempi::SendMode::Auto, 8192, 1, 4, &accelerated);
  EXPECT_GT(baseline / accelerated, 100.0)
      << "baseline " << baseline << " us vs tempi " << accelerated << " us";
}

TEST_F(TempiSend, LatencyFloorIsTensOfMicroseconds) {
  // Sec. 6.3: ~30 us floor, mostly the two pack/unpack kernels.
  double us = 0.0;
  exchange_and_check(tempi::SendMode::ForceDevice, 8, 4, 8, &us);
  EXPECT_GT(us, 15.0);
  EXPECT_LT(us, 80.0);
}

TEST_F(TempiSend, ContiguousTypesForwardToSystem) {
  tempi::reset_send_stats();
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_contiguous(1024, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    SpaceBuffer buf(vcuda::MemorySpace::Device, 4096);
    if (rank == 0) {
      fill_pattern(buf.get(), 4096);
      MPI_Send(buf.get(), 1, t, 1, 0, MPI_COMM_WORLD);
    } else {
      MPI_Recv(buf.get(), 1, t, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.forwarded, 1u);
  EXPECT_EQ(stats.oneshot + stats.device + stats.staged, 0u);
}

TEST_F(TempiSend, HostBuffersForwardToSystem) {
  tempi::reset_send_stats();
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(16, 2, 4, MPI_INT, &t);
    MPI_Type_commit(&t);
    std::vector<int> buf(16 * 4, rank);
    if (rank == 0) {
      MPI_Send(buf.data(), 1, t, 1, 0, MPI_COMM_WORLD);
    } else {
      MPI_Recv(buf.data(), 1, t, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(buf[0], 0);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  EXPECT_EQ(tempi::send_stats().forwarded, 1u);
}

TEST_F(TempiSend, MultiCountObjectsArriveIntact) {
  run2([&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(8, 4, 12, MPI_DOUBLE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    constexpr int kCount = 3;
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) * kCount + 128);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size(), 5);
      MPI_Send(buf.get(), kCount, t, 1, 0, MPI_COMM_WORLD);
      MPI_Send(buf.get(), static_cast<int>(buf.size()), MPI_BYTE, 1, 1,
               MPI_COMM_WORLD);
    } else {
      std::memset(buf.get(), 0, buf.size());
      MPI_Recv(buf.get(), kCount, t, 0, 0, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
      std::vector<std::byte> raw(buf.size());
      MPI_Recv(raw.data(), static_cast<int>(raw.size()), MPI_BYTE, 0, 1,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      EXPECT_EQ(reference_pack(buf.get(), kCount, *t),
                reference_pack(raw.data(), kCount, *t));
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

} // namespace
