// The collectives engine (tempi/collectives.*): result equivalence
// against the system path for random derived datatypes, self-exchange,
// zero-count peers, dist-graph neighbor topologies (including aliased and
// self edges), per-rank interoperability with system-path peers,
// oversized-peer pipelined legs under an injected wire limit, the
// TEMPI_COLL kill-switch, and the engine counters.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/collectives.hpp"
#include "tempi/methods.hpp"
#include "tempi/packer.hpp"
#include "tempi/perf_model.hpp"
#include "tempi/tempi.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <random>
#include <vector>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::SpaceBuffer;

struct Rng {
  std::mt19937 gen;
  explicit Rng(unsigned seed) : gen(seed) {}
  int uniform(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen);
  }
};

MPI_Datatype random_named(Rng &rng) {
  switch (rng.uniform(0, 3)) {
  case 0: return MPI_BYTE;
  case 1: return MPI_SHORT;
  case 2: return MPI_FLOAT;
  default: return MPI_DOUBLE;
  }
}

/// Random nested strided type (the test_property_random_types generator
/// family): contiguous / vector / hvector / subarray nestings over random
/// named types, committed.
MPI_Datatype random_strided_type(Rng &rng, int levels) {
  MPI_Datatype cur = random_named(rng);
  bool owned = false;
  for (int level = 0; level < levels; ++level) {
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(cur, &lb, &extent);
    MPI_Datatype next = nullptr;
    switch (rng.uniform(0, 3)) {
    case 0: {
      MPI_Type_contiguous(rng.uniform(1, 4), cur, &next);
      break;
    }
    case 1: {
      const int blocklen = rng.uniform(1, 3);
      const int stride = blocklen + rng.uniform(0, 3);
      MPI_Type_vector(rng.uniform(1, 4), blocklen, stride, cur, &next);
      break;
    }
    case 2: {
      const int blocklen = rng.uniform(1, 3);
      const MPI_Aint stride = extent * blocklen + rng.uniform(0, 2) * extent;
      MPI_Type_create_hvector(rng.uniform(1, 4), blocklen, stride, cur,
                              &next);
      break;
    }
    default: {
      const int sub = rng.uniform(1, 3);
      const int size = sub + rng.uniform(0, 3);
      const int start = rng.uniform(0, size - sub);
      const int sizes[1] = {size}, subsizes[1] = {sub}, starts[1] = {start};
      MPI_Type_create_subarray(1, sizes, subsizes, starts, MPI_ORDER_C, cur,
                               &next);
      break;
    }
    }
    if (owned) {
      MPI_Type_free(&cur);
    }
    cur = next;
    owned = true;
  }
  MPI_Type_commit(&cur);
  return cur;
}

/// Run one MPI_Alltoallv exchange on `ranks` ranks (two per virtual node,
/// so legs mix intra- and inter-node paths) with deterministic per-peer
/// counts — including zero-count peers — and return every rank's full
/// receive buffer. `space(rank)` picks each rank's buffer residency so
/// engine ranks and system-path ranks can mix in one call.
std::vector<std::vector<std::byte>>
run_alltoallv(bool engine, int ranks, unsigned type_seed,
              const std::function<vcuda::MemorySpace(int)> &space,
              int ranks_per_node = 2) {
  tempi::coll::set_enabled(engine);
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(ranks));
  sysmpi::RunConfig cfg;
  cfg.ranks = ranks;
  cfg.ranks_per_node = ranks_per_node;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    Rng rng(type_seed); // the same type on every rank
    MPI_Datatype t = random_strided_type(rng, rng.uniform(1, 3));
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    int P = 0;
    MPI_Comm_size(MPI_COMM_WORLD, &P);
    // Counts vary per (rank, peer) with zeros included; displacements
    // leave one-object gaps so misplaced bytes are caught.
    std::vector<int> scounts(P), sdispls(P), rcounts(P), rdispls(P);
    int soff = 0, roff = 0;
    for (int p = 0; p < P; ++p) {
      scounts[p] = (rank + p) % 3;
      sdispls[p] = soff;
      soff += scounts[p] + 1;
      rcounts[p] = (p + rank) % 3; // == peer p's scounts for me
      rdispls[p] = roff;
      roff += rcounts[p] + 1;
    }
    SpaceBuffer sbuf(space(rank),
                     static_cast<std::size_t>(soff) * extent + 64);
    SpaceBuffer rbuf(space(rank),
                     static_cast<std::size_t>(roff) * extent + 64);
    fill_pattern(sbuf.get(), sbuf.size(), static_cast<unsigned>(rank) + 1);
    std::memset(rbuf.get(), 0, rbuf.size());
    ASSERT_EQ(MPI_Alltoallv(sbuf.get(), scounts.data(), sdispls.data(), t,
                            rbuf.get(), rcounts.data(), rdispls.data(), t,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    out[static_cast<std::size_t>(rank)].assign(rbuf.bytes(),
                                               rbuf.bytes() + rbuf.size());
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::coll::set_enabled(true);
  return out;
}

vcuda::MemorySpace all_device(int) { return vcuda::MemorySpace::Device; }

class CollectivesRandomTypes : public ::testing::TestWithParam<unsigned> {};

TEST_P(CollectivesRandomTypes, AlltoallvMatchesSystemPath) {
  tempi::ScopedInterposer guard;
  const auto engine = run_alltoallv(true, 4, GetParam(), all_device);
  const auto system = run_alltoallv(false, 4, GetParam(), all_device);
  for (std::size_t r = 0; r < engine.size(); ++r) {
    EXPECT_EQ(engine[r], system[r]) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectivesRandomTypes,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Collectives, EngineMatchesSystemPathAt256Ranks32Nodes) {
  // The fig16 cluster scale: 256 ranks over 32 virtual nodes, so the
  // node-aware schedule reorders many inter-node legs per rank. Engine
  // and system path must still agree byte-for-byte.
  tempi::ScopedInterposer guard;
  const auto engine = run_alltoallv(true, 256, 11u, all_device, 8);
  const auto system = run_alltoallv(false, 256, 11u, all_device, 8);
  ASSERT_EQ(engine.size(), system.size());
  for (std::size_t r = 0; r < engine.size(); ++r) {
    ASSERT_EQ(engine[r], system[r]) << "rank " << r;
  }
}

TEST(Collectives, SelfExchangeSingleRank) {
  // A one-rank alltoallv is all self-exchange: the engine short-circuits
  // the leg as a device copy between the fused pack and unpack passes.
  tempi::ScopedInterposer guard;
  tempi::reset_send_stats();
  const auto engine = run_alltoallv(true, 1, 7u, all_device);
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.coll_alltoallv, 1u);
  EXPECT_EQ(stats.coll_peer_legs, 1u); // the self pair is one copy leg
  const auto system = run_alltoallv(false, 1, 7u, all_device);
  EXPECT_EQ(engine[0], system[0]);
}

TEST(Collectives, MixedResidencyRanksInteroperate) {
  // Per-rank contract: rank 0 (host buffers) falls through to the system
  // path while the others ride the engine — one collective, byte-equal
  // results everywhere, because the wire carries packed bytes under the
  // same tags either way.
  tempi::ScopedInterposer guard;
  const auto space = [](int rank) {
    return rank == 0 ? vcuda::MemorySpace::Pageable
                     : vcuda::MemorySpace::Device;
  };
  const auto mixed = run_alltoallv(true, 4, 8u, space);
  const auto system = run_alltoallv(false, 4, 8u, space);
  for (std::size_t r = 0; r < mixed.size(); ++r) {
    EXPECT_EQ(mixed[r], system[r]) << "rank " << r;
  }
}

TEST(Collectives, HostOnlyCallsFallThrough) {
  tempi::ScopedInterposer guard;
  tempi::reset_send_stats();
  const auto host = [](int) { return vcuda::MemorySpace::Pageable; };
  run_alltoallv(true, 2, 9u, host);
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.coll_alltoallv, 0u);
  EXPECT_EQ(stats.coll_fallback, 2u); // one per rank
}

TEST(Collectives, KillSwitchDisablesEngine) {
  tempi::ScopedInterposer guard;
  tempi::reset_send_stats();
  EXPECT_TRUE(tempi::coll::enabled());
  run_alltoallv(false, 2, 10u, all_device); // device buffers, engine off
  const tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.coll_alltoallv, 0u);
  EXPECT_EQ(stats.coll_fallback, 2u);
  EXPECT_TRUE(tempi::coll::enabled()); // run_alltoallv restored it
}

/// Neighbor exchange over an explicit dist-graph, engine vs system path.
/// The graph includes self edges and repeated edges when `aliased`.
void check_neighbor(bool aliased, unsigned type_seed) {
  std::vector<std::vector<std::byte>> results[2];
  for (const bool engine : {true, false}) {
    tempi::coll::set_enabled(engine);
    auto &out = results[engine ? 0 : 1];
    out.assign(4, {});
    sysmpi::RunConfig cfg;
    cfg.ranks = 4;
    cfg.ranks_per_node = 2;
    sysmpi::run_ranks(cfg, [&](int rank) {
      MPI_Init(nullptr, nullptr);
      Rng rng(type_seed);
      MPI_Datatype t = random_strided_type(rng, rng.uniform(1, 3));
      MPI_Aint lb = 0, extent = 0;
      MPI_Type_get_extent(t, &lb, &extent);
      int P = 0;
      MPI_Comm_size(MPI_COMM_WORLD, &P);
      // Ring edges; aliased adds a self edge and duplicates the ring
      // successor, exercising j-th-message-by-order pairing.
      std::vector<int> dsts{(rank + 1) % P};
      std::vector<int> srcs{(rank - 1 + P) % P};
      if (aliased) {
        dsts = {rank, (rank + 1) % P, (rank + 1) % P};
        srcs = {rank, (rank - 1 + P) % P, (rank - 1 + P) % P};
      }
      MPI_Comm graph = MPI_COMM_NULL;
      MPI_Dist_graph_create_adjacent(
          MPI_COMM_WORLD, static_cast<int>(srcs.size()), srcs.data(), nullptr,
          static_cast<int>(dsts.size()), dsts.data(), nullptr, MPI_INFO_NULL,
          0, &graph);
      const int n = static_cast<int>(dsts.size());
      std::vector<int> counts(n), sdispls(n), rdispls(n);
      int off = 0;
      for (int i = 0; i < n; ++i) {
        counts[i] = 1 + (rank + i) % 2;
        sdispls[i] = off;
        rdispls[i] = off;
        off += 3;
      }
      // Receive counts must match what the matched sender ships: with the
      // symmetric construction above every slot pairs with a congruent
      // opposite slot of the same index, but the peer's count depends on
      // *its* rank, so recompute it.
      std::vector<int> rcounts(n);
      for (int i = 0; i < n; ++i) {
        rcounts[i] = 1 + (srcs[static_cast<std::size_t>(i)] + i) % 2;
      }
      SpaceBuffer sbuf(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(off) * extent + 64);
      SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(off) * extent + 64);
      fill_pattern(sbuf.get(), sbuf.size(), static_cast<unsigned>(rank) + 1);
      std::memset(rbuf.get(), 0, rbuf.size());
      ASSERT_EQ(MPI_Neighbor_alltoallv(sbuf.get(), counts.data(),
                                       sdispls.data(), t, rbuf.get(),
                                       rcounts.data(), rdispls.data(), t,
                                       graph),
                MPI_SUCCESS);
      out[static_cast<std::size_t>(rank)].assign(rbuf.bytes(),
                                                 rbuf.bytes() + rbuf.size());
      MPI_Comm_free(&graph);
      MPI_Type_free(&t);
      MPI_Finalize();
    });
  }
  tempi::coll::set_enabled(true);
  for (std::size_t r = 0; r < results[0].size(); ++r) {
    EXPECT_EQ(results[0][r], results[1][r]) << "rank " << r;
  }
}

TEST(Collectives, NeighborRingMatchesSystemPath) {
  tempi::ScopedInterposer guard;
  tempi::reset_send_stats();
  check_neighbor(/*aliased=*/false, 11u);
  EXPECT_EQ(tempi::send_stats().coll_neighbor, 4u); // engine run only
}

TEST(Collectives, NeighborSelfAndAliasedEdgesMatchSystemPath) {
  tempi::ScopedInterposer guard;
  check_neighbor(/*aliased=*/true, 12u);
}

TEST(Collectives, OversizedPeerLegsPipelineUnderInjectedLimit) {
  // Per-peer legs above the wire-chunk limit must ship as ordered PR 3
  // legs (send_packed_pipelined / PackedChunkRecv) — scaled down via the
  // injectable limit so kilobytes exercise the >2 GiB machinery.
  tempi::ScopedInterposer guard;
  const std::size_t old_limit = tempi::set_wire_chunk_limit(4096);
  tempi::reset_send_stats();
  std::vector<std::vector<std::byte>> out(2);
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    // 1024 blocks x 16 B = 16 KiB packed per peer: 4x the injected limit.
    MPI_Datatype t = nullptr;
    MPI_Type_vector(1024, 16, 48, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    const int counts[2] = {1, 1};
    const int displs[2] = {0, 1};
    SpaceBuffer sbuf(vcuda::MemorySpace::Device,
                     2 * static_cast<std::size_t>(extent) + 64);
    SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                     2 * static_cast<std::size_t>(extent) + 64);
    fill_pattern(sbuf.get(), sbuf.size(), static_cast<unsigned>(rank) + 1);
    std::memset(rbuf.get(), 0, rbuf.size());
    ASSERT_EQ(MPI_Alltoallv(sbuf.get(), counts, displs, t, rbuf.get(),
                            counts, displs, t, MPI_COMM_WORLD),
              MPI_SUCCESS);
    out[static_cast<std::size_t>(rank)].assign(rbuf.bytes(),
                                               rbuf.bytes() + rbuf.size());
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  const tempi::SendStats stats = tempi::send_stats();
  tempi::set_wire_chunk_limit(old_limit);
  EXPECT_EQ(stats.coll_alltoallv, 2u);
  // Each rank's non-self leg (16 KiB over a 4 KiB limit) pipelines on
  // both sides: at least 5 sender legs (4 full + terminator) plus the
  // receiver's mirror of them, per direction.
  EXPECT_GE(stats.pipeline_chunks, 20u);
  EXPECT_GE(stats.pipeline_over_ceiling_bytes, 2u * 16384u);

  // Byte-exactness vs the system path (run with the default limit).
  tempi::coll::set_enabled(false);
  std::vector<std::vector<std::byte>> sys(2);
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(1024, 16, 48, MPI_BYTE, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    const int counts[2] = {1, 1};
    const int displs[2] = {0, 1};
    SpaceBuffer sbuf(vcuda::MemorySpace::Device,
                     2 * static_cast<std::size_t>(extent) + 64);
    SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                     2 * static_cast<std::size_t>(extent) + 64);
    fill_pattern(sbuf.get(), sbuf.size(), static_cast<unsigned>(rank) + 1);
    std::memset(rbuf.get(), 0, rbuf.size());
    ASSERT_EQ(MPI_Alltoallv(sbuf.get(), counts, displs, t, rbuf.get(),
                            counts, displs, t, MPI_COMM_WORLD),
              MPI_SUCCESS);
    sys[static_cast<std::size_t>(rank)].assign(rbuf.bytes(),
                                               rbuf.bytes() + rbuf.size());
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::coll::set_enabled(true);
  EXPECT_EQ(out[0], sys[0]);
  EXPECT_EQ(out[1], sys[1]);
}

/// Gatherv / Allgather (thin reductions onto the exchange core) vs the
/// system path, device buffers, derived types.
TEST(Collectives, GathervMatchesSystemPath) {
  tempi::ScopedInterposer guard;
  std::vector<std::byte> results[2];
  for (const bool engine : {true, false}) {
    tempi::coll::set_enabled(engine);
    auto &root_out = results[engine ? 0 : 1];
    sysmpi::RunConfig cfg;
    cfg.ranks = 4;
    cfg.ranks_per_node = 2;
    sysmpi::run_ranks(cfg, [&](int rank) {
      MPI_Init(nullptr, nullptr);
      Rng rng(13u);
      MPI_Datatype t = random_strided_type(rng, 2);
      MPI_Aint lb = 0, extent = 0;
      MPI_Type_get_extent(t, &lb, &extent);
      int P = 0;
      MPI_Comm_size(MPI_COMM_WORLD, &P);
      std::vector<int> rcounts(P), displs(P);
      int off = 0;
      for (int p = 0; p < P; ++p) {
        rcounts[p] = 1 + p % 2;
        displs[p] = off;
        off += rcounts[p] + 1;
      }
      const int mine = rcounts[rank];
      SpaceBuffer sbuf(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(mine) * extent + 64);
      SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(off) * extent + 64);
      fill_pattern(sbuf.get(), sbuf.size(), static_cast<unsigned>(rank) + 1);
      std::memset(rbuf.get(), 0, rbuf.size());
      ASSERT_EQ(MPI_Gatherv(sbuf.get(), mine, t, rbuf.get(), rcounts.data(),
                            displs.data(), t, 1, MPI_COMM_WORLD),
                MPI_SUCCESS);
      if (rank == 1) {
        root_out.assign(rbuf.bytes(), rbuf.bytes() + rbuf.size());
      }
      MPI_Type_free(&t);
      MPI_Finalize();
    });
  }
  tempi::coll::set_enabled(true);
  EXPECT_EQ(results[0], results[1]);
}

TEST(Collectives, AllgatherMatchesSystemPath) {
  tempi::ScopedInterposer guard;
  std::vector<std::vector<std::byte>> results[2];
  for (const bool engine : {true, false}) {
    tempi::coll::set_enabled(engine);
    auto &out = results[engine ? 0 : 1];
    out.assign(4, {});
    sysmpi::RunConfig cfg;
    cfg.ranks = 4;
    cfg.ranks_per_node = 2;
    sysmpi::run_ranks(cfg, [&](int rank) {
      MPI_Init(nullptr, nullptr);
      Rng rng(14u);
      MPI_Datatype t = random_strided_type(rng, 2);
      MPI_Aint lb = 0, extent = 0;
      MPI_Type_get_extent(t, &lb, &extent);
      int P = 0;
      MPI_Comm_size(MPI_COMM_WORLD, &P);
      constexpr int kCount = 2;
      SpaceBuffer sbuf(vcuda::MemorySpace::Device,
                       kCount * static_cast<std::size_t>(extent) + 64);
      SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(P) * kCount * extent + 64);
      fill_pattern(sbuf.get(), sbuf.size(), static_cast<unsigned>(rank) + 1);
      std::memset(rbuf.get(), 0, rbuf.size());
      ASSERT_EQ(MPI_Allgather(sbuf.get(), kCount, t, rbuf.get(), kCount, t,
                              MPI_COMM_WORLD),
                MPI_SUCCESS);
      out[static_cast<std::size_t>(rank)].assign(rbuf.bytes(),
                                                 rbuf.bytes() + rbuf.size());
      MPI_Type_free(&t);
      MPI_Finalize();
    });
  }
  tempi::coll::set_enabled(true);
  for (std::size_t r = 0; r < results[0].size(); ++r) {
    EXPECT_EQ(results[0][r], results[1][r]) << "rank " << r;
  }
}

TEST(Collectives, SpanPassMatchesPerPeerPacks) {
  // The fused span kernel (launch_pack_spans) must byte-match packing
  // each peer's objects separately — it is the same packed stream, just
  // one launch.
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  MPI_Datatype t = nullptr;
  MPI_Type_vector(16, 8, 24, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  const auto packer = tempi::find_packer(t);
  ASSERT_NE(packer, nullptr);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  const int counts[3] = {2, 0, 3};
  const long long displs[3] = {0, 2, 3}; // extent units, with a gap
  const std::size_t size = packer->packed_bytes(1);

  SpaceBuffer src(vcuda::MemorySpace::Device, 8 * extent + 64);
  fill_pattern(src.get(), src.size());
  std::vector<tempi::PackSpan> spans;
  std::size_t off = 0;
  for (int i = 0; i < 3; ++i) {
    spans.push_back(tempi::PackSpan{displs[i] * extent,
                                    static_cast<long long>(off), counts[i]});
    off += static_cast<std::size_t>(counts[i]) * size;
  }
  SpaceBuffer fused(vcuda::MemorySpace::Device, off);
  ASSERT_EQ(packer->pack_spans_async(fused.get(), src.get(), spans,
                                     vcuda::default_stream()),
            vcuda::Error::Success);
  vcuda::StreamSynchronize(vcuda::default_stream());

  SpaceBuffer per_peer(vcuda::MemorySpace::Device, off);
  std::size_t pos = 0;
  for (int i = 0; i < 3; ++i) {
    if (counts[i] == 0) {
      continue;
    }
    ASSERT_EQ(packer->pack(per_peer.bytes() + pos,
                           static_cast<const std::byte *>(src.get()) +
                               displs[i] * extent,
                           counts[i], vcuda::default_stream()),
              vcuda::Error::Success);
    pos += static_cast<std::size_t>(counts[i]) * size;
  }
  EXPECT_EQ(std::memcmp(fused.get(), per_peer.get(), off), 0);

  // And the scatter pass inverts it.
  SpaceBuffer dst(vcuda::MemorySpace::Device, 8 * extent + 64);
  std::memset(dst.get(), 0, dst.size());
  ASSERT_EQ(packer->unpack_spans_async(dst.get(), fused.get(), spans,
                                       vcuda::default_stream()),
            vcuda::Error::Success);
  vcuda::StreamSynchronize(vcuda::default_stream());
  SpaceBuffer rt(vcuda::MemorySpace::Device, off);
  ASSERT_EQ(packer->pack_spans_async(rt.get(), dst.get(), spans,
                                     vcuda::default_stream()),
            vcuda::Error::Success);
  vcuda::StreamSynchronize(vcuda::default_stream());
  EXPECT_EQ(std::memcmp(rt.get(), fused.get(), off), 0);
  MPI_Type_free(&t);
}

TEST(Collectives, EnvKillSwitchReadAtInstall) {
  // TEMPI_COLL mirrors TEMPI_METHOD: no-recompile disabling, decided (and
  // logged) at install time.
  setenv("TEMPI_COLL", "0", 1);
  tempi::install();
  EXPECT_FALSE(tempi::coll::enabled());
  tempi::uninstall();
  setenv("TEMPI_COLL", "1", 1);
  tempi::install();
  EXPECT_TRUE(tempi::coll::enabled());
  tempi::uninstall();
  unsetenv("TEMPI_COLL");
}

TEST(Collectives, ChooseLegIsCachedAndPlacementAware) {
  const tempi::PerfModel model;
  tempi::reset_model_cache_stats();
  const tempi::TransferChoice inter = model.choose_leg(1 << 20, false);
  const tempi::TransferChoice intra = model.choose_leg(1 << 20, true);
  EXPECT_NE(inter.method, tempi::Method::Pipelined);
  EXPECT_NE(intra.method, tempi::Method::Pipelined);
  const auto misses = tempi::model_cache_stats().misses;
  EXPECT_GE(misses, 2u); // distinct salted keys per placement
  // Repeat queries hit the lock-free cache.
  const tempi::TransferChoice again = model.choose_leg(1 << 20, false);
  EXPECT_EQ(again.method, inter.method);
  EXPECT_GT(tempi::model_cache_stats().hits, 0u);
  // Over-limit legs pipeline with an in-limit chunk.
  const std::size_t old_limit = tempi::set_wire_chunk_limit(4096);
  const tempi::TransferChoice big = model.choose_leg(64 * 1024, false);
  tempi::set_wire_chunk_limit(old_limit);
  EXPECT_EQ(big.method, tempi::Method::Pipelined);
  EXPECT_GT(big.chunk_bytes, 0u);
  EXPECT_LE(big.chunk_bytes, 4096u);
}

} // namespace
