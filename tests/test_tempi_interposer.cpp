// The interposition architecture (Sec. 5): overridden symbols land in
// TEMPI, everything else falls through to the system MPI, and removal
// restores the original resolution — without touching application code.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/tempi.hpp"
#include "tempi/trace.hpp"
#include "test_helpers.hpp"
#include "vcuda/clock.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

using testing_helpers::fill_pattern;
using testing_helpers::reference_pack;
using testing_helpers::SpaceBuffer;

MPI_Datatype committed_vector(int count, int blocklen, int stride) {
  MPI_Datatype t = nullptr;
  MPI_Type_vector(count, blocklen, stride, MPI_BYTE, &t);
  MPI_Type_commit(&t);
  return t;
}

TEST(Interposer, InstallAndUninstallSwapTables) {
  const auto system_send = interpose::system_table().Send;
  EXPECT_EQ(interpose::active_table().Send, system_send);
  EXPECT_FALSE(interpose::interposed());
  {
    tempi::ScopedInterposer guard;
    EXPECT_TRUE(interpose::interposed());
    EXPECT_NE(interpose::active_table().Send, system_send);
    // The collectives engine owns the dense exchange collectives.
    EXPECT_NE(interpose::active_table().Alltoallv,
              interpose::system_table().Alltoallv);
    EXPECT_NE(interpose::active_table().Neighbor_alltoallv,
              interpose::system_table().Neighbor_alltoallv);
    EXPECT_NE(interpose::active_table().Allgather,
              interpose::system_table().Allgather);
    EXPECT_NE(interpose::active_table().Gatherv,
              interpose::system_table().Gatherv);
    // Uncovered symbols fall through: same function pointer as the system.
    EXPECT_EQ(interpose::active_table().Barrier,
              interpose::system_table().Barrier);
    EXPECT_EQ(interpose::active_table().Type_vector,
              interpose::system_table().Type_vector);
  }
  EXPECT_FALSE(interpose::interposed());
  EXPECT_EQ(interpose::active_table().Send, system_send);
}

TEST(Interposer, CommitBuildsPackerForStridedTypes) {
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  MPI_Datatype t = committed_vector(16, 4, 32);
  const auto packer = tempi::find_packer(t);
  ASSERT_NE(packer, nullptr);
  EXPECT_EQ(packer->block().block_bytes(), 4);
  EXPECT_EQ(packer->block().counts[1], 16);
  MPI_Type_free(&t);
  EXPECT_EQ(tempi::find_packer(t), nullptr); // evicted (handle is null now)
}

TEST(Interposer, CommitFallsBackForIndexedTypes) {
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  const int blens[2] = {1, 2};
  const int displs[2] = {0, 7};
  MPI_Datatype t = nullptr;
  MPI_Type_indexed(2, blens, displs, MPI_INT, &t);
  ASSERT_EQ(MPI_Type_commit(&t), MPI_SUCCESS);
  EXPECT_EQ(tempi::find_packer(t), nullptr);
  // The type still works through the system path.
  int src[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  std::byte out[12];
  int position = 0;
  EXPECT_EQ(MPI_Pack(src, 1, t, out, 12, &position, MPI_COMM_WORLD),
            MPI_SUCCESS);
  EXPECT_EQ(position, 12);
  MPI_Type_free(&t);
}

TEST(Interposer, FastLookupTracksCommitAndFree) {
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  MPI_Datatype t = committed_vector(16, 4, 32);
  // The handle cache and the authoritative map must agree, including on
  // repeat (cached) lookups.
  EXPECT_EQ(tempi::find_packer_fast(t), tempi::find_packer(t).get());
  EXPECT_EQ(tempi::find_packer_fast(t), tempi::find_packer(t).get());
  const tempi::Packer *before_free = tempi::find_packer_fast(t);
  ASSERT_NE(before_free, nullptr);
  MPI_Type_free(&t);
  // Freeing bumps the generation: the stale slot must not resolve.
  EXPECT_EQ(tempi::find_packer_fast(t), nullptr);
  // The retired packer itself stays valid (graveyard, not destroyed):
  // reading through the old pointer is safe until uninstall.
  EXPECT_EQ(before_free->block().block_bytes(), 4);
  // A fresh commit (possibly reusing the handle) resolves again.
  MPI_Datatype t2 = committed_vector(8, 2, 6);
  EXPECT_EQ(tempi::find_packer_fast(t2), tempi::find_packer(t2).get());
  EXPECT_NE(tempi::find_packer_fast(t2), nullptr);
  MPI_Type_free(&t2);
}

TEST(Interposer, DoubleCommitIsIdempotent) {
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  MPI_Datatype t = committed_vector(8, 2, 6);
  const auto first = tempi::find_packer(t);
  ASSERT_EQ(MPI_Type_commit(&t), MPI_SUCCESS);
  EXPECT_EQ(tempi::find_packer(t), first);
  MPI_Type_free(&t);
}

TEST(Interposer, PackOnDeviceUsesKernelNotBlockLoop) {
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  MPI_Datatype t = committed_vector(256, 8, 64);

  SpaceBuffer src(vcuda::MemorySpace::Device, 256 * 64);
  SpaceBuffer out(vcuda::MemorySpace::Device, 256 * 8);
  fill_pattern(src.get(), src.size());

  vcuda::reset_counters();
  int position = 0;
  ASSERT_EQ(MPI_Pack(src.get(), 1, t, out.get(), 256 * 8, &position,
                     MPI_COMM_WORLD),
            MPI_SUCCESS);
  EXPECT_EQ(vcuda::counters().kernel_launches, 1u);
  EXPECT_EQ(vcuda::counters().memcpy_async_calls, 0u); // no per-block loop

  const auto expect = reference_pack(src.get(), 1, *t);
  EXPECT_EQ(std::memcmp(out.get(), expect.data(), expect.size()), 0);
  MPI_Type_free(&t);
}

TEST(Interposer, PackOnHostForwardsToSystem) {
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  MPI_Datatype t = committed_vector(16, 4, 8);

  std::vector<std::byte> src(16 * 8), out(16 * 4);
  fill_pattern(src.data(), src.size());
  vcuda::reset_counters();
  int position = 0;
  ASSERT_EQ(MPI_Pack(src.data(), 1, t, out.data(),
                     static_cast<int>(out.size()), &position, MPI_COMM_WORLD),
            MPI_SUCCESS);
  EXPECT_EQ(vcuda::counters().kernel_launches, 0u); // stayed on the CPU path
  const auto expect = reference_pack(src.data(), 1, *t);
  EXPECT_EQ(std::memcmp(out.data(), expect.data(), expect.size()), 0);
  MPI_Type_free(&t);
}

TEST(Interposer, UnpackOnDeviceInvertsPack) {
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  MPI_Datatype t = committed_vector(64, 16, 48);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);

  SpaceBuffer src(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent));
  SpaceBuffer mid(vcuda::MemorySpace::Device, 64 * 16);
  SpaceBuffer dst(vcuda::MemorySpace::Device,
                  static_cast<std::size_t>(extent));
  fill_pattern(src.get(), src.size());
  std::memset(dst.get(), 0, dst.size());

  int position = 0;
  ASSERT_EQ(MPI_Pack(src.get(), 1, t, mid.get(), 64 * 16, &position,
                     MPI_COMM_WORLD),
            MPI_SUCCESS);
  position = 0;
  ASSERT_EQ(MPI_Unpack(mid.get(), 64 * 16, &position, dst.get(), 1, t,
                       MPI_COMM_WORLD),
            MPI_SUCCESS);
  EXPECT_EQ(reference_pack(src.get(), 1, *t), reference_pack(dst.get(), 1, *t));
  MPI_Type_free(&t);
}

TEST(Interposer, PackSpeedupIsEnormous) {
  // The Fig. 8 effect in miniature: TEMPI's single kernel vs the baseline
  // per-block loop on a device object with small blocks.
  sysmpi::ensure_self_context();
  constexpr int kBlocks = 512;
  SpaceBuffer src(vcuda::MemorySpace::Device, kBlocks * 16);
  SpaceBuffer out(vcuda::MemorySpace::Device, kBlocks * 4);

  vcuda::VirtualNs baseline_ns = 0, tempi_ns = 0;
  {
    MPI_Datatype t = committed_vector(kBlocks, 4, 16);
    int position = 0;
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    ASSERT_EQ(MPI_Pack(src.get(), 1, t, out.get(), kBlocks * 4, &position,
                       MPI_COMM_WORLD),
              MPI_SUCCESS);
    baseline_ns = vcuda::virtual_now() - t0;
    MPI_Type_free(&t);
  }
  {
    tempi::ScopedInterposer guard;
    MPI_Datatype t = committed_vector(kBlocks, 4, 16);
    int position = 0;
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    ASSERT_EQ(MPI_Pack(src.get(), 1, t, out.get(), kBlocks * 4, &position,
                       MPI_COMM_WORLD),
              MPI_SUCCESS);
    tempi_ns = vcuda::virtual_now() - t0;
    MPI_Type_free(&t);
  }
  EXPECT_GT(baseline_ns, 100 * tempi_ns)
      << "baseline " << baseline_ns << " ns vs tempi " << tempi_ns << " ns";
}

TEST(Interposer, DoubleInstallIsIdempotent) {
  tempi::install();
  const auto send_once = interpose::active_table().Send;
  tempi::install(); // second install must not stack the interposer
  EXPECT_EQ(interpose::active_table().Send, send_once);
  tempi::uninstall();
  tempi::uninstall(); // and double-uninstall must be harmless
  EXPECT_EQ(interpose::active_table().Send, interpose::system_table().Send);
}

TEST(Interposer, ReinstallAfterUninstallWorks) {
  sysmpi::ensure_self_context();
  for (int round = 0; round < 3; ++round) {
    tempi::ScopedInterposer guard;
    MPI_Datatype t = committed_vector(8, 4, 16);
    EXPECT_NE(tempi::find_packer(t), nullptr) << "round " << round;
    MPI_Type_free(&t);
  }
}

TEST(Interposer, SendModeControlsMethod) {
  tempi::ScopedInterposer guard;
  tempi::set_send_mode(tempi::SendMode::ForceDevice);
  EXPECT_EQ(tempi::send_mode(), tempi::SendMode::ForceDevice);
  tempi::set_send_mode(tempi::SendMode::ForcePipelined);
  EXPECT_EQ(tempi::send_mode(), tempi::SendMode::ForcePipelined);
  tempi::set_send_mode(tempi::SendMode::Auto);
  EXPECT_EQ(tempi::send_mode(), tempi::SendMode::Auto);
}

TEST(Interposer, PipelineCountersTrackChunkedSends) {
  tempi::ScopedInterposer guard;
  tempi::set_send_mode(tempi::SendMode::ForcePipelined);
  tempi::reset_send_stats();
  const tempi::SendStats before = tempi::send_stats();
  EXPECT_EQ(before.pipelined, 0u);
  EXPECT_EQ(before.isend_pipelined, 0u);
  EXPECT_EQ(before.pipeline_chunks, 0u);
  EXPECT_EQ(before.pipeline_over_ceiling_bytes, 0u);

  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = committed_vector(512, 16, 48);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size());
      MPI_Send(buf.get(), 1, t, 1, 0, MPI_COMM_WORLD);
    } else {
      MPI_Recv(buf.get(), 1, t, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });

  const tempi::SendStats after = tempi::send_stats();
  EXPECT_EQ(after.pipelined, 1u);
  // Sender legs (data + terminator) and the receiver's mirror of them.
  EXPECT_GE(after.pipeline_chunks, 4u);
  // The message fits the default 2 GiB wire ceiling: nothing oversized.
  EXPECT_EQ(after.pipeline_over_ceiling_bytes, 0u);

  tempi::reset_send_stats();
  const tempi::SendStats cleared = tempi::send_stats();
  EXPECT_EQ(cleared.pipelined, 0u);
  EXPECT_EQ(cleared.pipeline_chunks, 0u);
  tempi::set_send_mode(tempi::SendMode::Auto);
}

TEST(Interposer, ModelCountersTrackObservationsAndRefreshes) {
  // The self-tuning loop is observable two ways — SendStats fields and
  // the tempi.model.* trace counters — and they must agree.
  tempi::ScopedInterposer guard;
  tempi::tune::reset();
  tempi::reset_send_stats();
  tempi::set_send_mode(tempi::SendMode::ForceDevice);
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = committed_vector(512, 16, 48);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 64);
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size());
      MPI_Send(buf.get(), 1, t, 1, 0, MPI_COMM_WORLD);
    } else {
      MPI_Recv(buf.get(), 1, t, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::set_send_mode(tempi::SendMode::Auto);

  // The Device exchange harvested at least the pack and the unpack span.
  const tempi::SendStats s1 = tempi::send_stats();
  EXPECT_GE(s1.model_observations, 2u);
  EXPECT_EQ(s1.model_observations,
            tempi::trace::counter_value("tempi.model.observations"));
  EXPECT_EQ(s1.model_generation_bumps, 0u);
  EXPECT_EQ(s1.model_refreezes, 0u);

  // Two converged samples + an explicit refresh: one fold, one bump.
  tempi::tune::observe(tempi::tune::Axis::D2H, 0, 1, vcuda::us_to_ns(50.0));
  tempi::tune::observe(tempi::tune::Axis::D2H, 0, 1, vcuda::us_to_ns(50.0));
  EXPECT_TRUE(tempi::tune::refresh_now());
  const tempi::SendStats s2 = tempi::send_stats();
  EXPECT_GE(s2.model_updates, 1u);
  EXPECT_EQ(s2.model_generation_bumps, 1u);
  EXPECT_EQ(s2.model_updates,
            tempi::trace::counter_value("tempi.model.updates"));
  EXPECT_EQ(tempi::trace::counter_value("tempi.model.generation_bumps"), 1u);
  EXPECT_EQ(s2.model_refreezes,
            tempi::trace::counter_value("tempi.model.refreezes"));

  // Disabled: the sink drops samples without counting them.
  tempi::tune::set_enabled(false);
  tempi::tune::observe(tempi::tune::Axis::D2H, 0, 1, vcuda::us_to_ns(50.0));
  EXPECT_EQ(tempi::send_stats().model_observations, s2.model_observations);
  tempi::tune::set_enabled(true);
  tempi::tune::reset();
}

TEST(Interposer, TopoCountersAgreeBetweenTraceAndSendStats) {
  // The topology layer is observable two ways — SendStats fields and the
  // tempi.topo.* trace counters — and they must agree.
  tempi::ScopedInterposer guard;
  tempi::reset_send_stats();
  // A device alltoallv drives the node-aware schedule (staggered and
  // intra-node legs)...
  sysmpi::RunConfig cfg;
  cfg.ranks = 4;
  cfg.ranks_per_node = 2;
  sysmpi::run_ranks(cfg, [](int rank) {
    MPI_Init(nullptr, nullptr);
    SpaceBuffer sbuf(vcuda::MemorySpace::Device, 4 * 64);
    SpaceBuffer rbuf(vcuda::MemorySpace::Device, 4 * 64);
    fill_pattern(sbuf.get(), sbuf.size(), static_cast<unsigned>(rank) + 1);
    std::vector<int> counts(4, 64), displs(4);
    for (int p = 0; p < 4; ++p) {
      displs[static_cast<std::size_t>(p)] = p * 64;
    }
    ASSERT_EQ(MPI_Alltoallv(sbuf.get(), counts.data(), displs.data(),
                            MPI_BYTE, rbuf.get(), counts.data(),
                            displs.data(), MPI_BYTE, MPI_COMM_WORLD),
              MPI_SUCCESS);
    MPI_Finalize();
  });
  // ...and a reorder=1 Cart_create on a brick-improvable grid drives the
  // remap counter.
  cfg.ranks = 64;
  cfg.ranks_per_node = 8;
  sysmpi::run_ranks(cfg, [](int) {
    MPI_Init(nullptr, nullptr);
    const int dims[2] = {8, 8};
    const int periods[2] = {1, 1};
    MPI_Comm cart = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Cart_create(MPI_COMM_WORLD, 2, dims, periods, 1, &cart),
              MPI_SUCCESS);
    MPI_Comm_free(&cart);
    MPI_Finalize();
  });
  const tempi::SendStats s = tempi::send_stats();
  EXPECT_GT(s.topo_remaps, 0u);
  EXPECT_GT(s.topo_staggered_legs, 0u);
  EXPECT_GT(s.topo_intra_node_legs, 0u);
  EXPECT_EQ(s.topo_remaps, tempi::trace::counter_value("tempi.topo.remaps"));
  EXPECT_EQ(s.topo_staggered_legs,
            tempi::trace::counter_value("tempi.topo.staggered_legs"));
  EXPECT_EQ(s.topo_intra_node_legs,
            tempi::trace::counter_value("tempi.topo.intra_node_legs"));
}

TEST(Interposer, CollCountersTrackEngineAndFallback) {
  tempi::ScopedInterposer guard;
  tempi::reset_send_stats();
  const tempi::SendStats before = tempi::send_stats();
  EXPECT_EQ(before.coll_alltoallv, 0u);
  EXPECT_EQ(before.coll_neighbor, 0u);
  EXPECT_EQ(before.coll_fallback, 0u);
  EXPECT_EQ(before.coll_peer_legs, 0u);

  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [](int rank) {
    (void)rank;
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = committed_vector(8, 4, 16);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer dev_s(vcuda::MemorySpace::Device,
                      2 * static_cast<std::size_t>(extent) + 64);
    SpaceBuffer dev_r(vcuda::MemorySpace::Device,
                      2 * static_cast<std::size_t>(extent) + 64);
    fill_pattern(dev_s.get(), dev_s.size());
    const int counts[2] = {1, 1};
    const int displs[2] = {0, 1};
    // Device buffers + packer: engine-serviced (one alltoallv, 2 send +
    // 2 recv legs per rank, the self pair collapsing into one copy).
    MPI_Alltoallv(dev_s.get(), counts, displs, t, dev_r.get(), counts,
                  displs, t, MPI_COMM_WORLD);
    // Host buffers: the shared gate forwards to the system path.
    std::vector<std::byte> host_s(2 * static_cast<std::size_t>(extent) + 64);
    std::vector<std::byte> host_r(2 * static_cast<std::size_t>(extent) + 64);
    MPI_Alltoallv(host_s.data(), counts, displs, t, host_r.data(), counts,
                  displs, t, MPI_COMM_WORLD);
    MPI_Type_free(&t);
    MPI_Finalize();
  });

  const tempi::SendStats after = tempi::send_stats();
  EXPECT_EQ(after.coll_alltoallv, 2u); // one engine call per rank
  EXPECT_EQ(after.coll_neighbor, 0u);
  EXPECT_EQ(after.coll_fallback, 2u); // one host-only call per rank
  // Each engine rank fans out 2 send + 2 recv slots, minus the self pair
  // collapsed into one copy leg: 3 legs per rank.
  EXPECT_EQ(after.coll_peer_legs, 6u);

  tempi::reset_send_stats();
  const tempi::SendStats cleared = tempi::send_stats();
  EXPECT_EQ(cleared.coll_alltoallv, 0u);
  EXPECT_EQ(cleared.coll_fallback, 0u);
  EXPECT_EQ(cleared.coll_peer_legs, 0u);
}

TEST(TempiTest, RedCountersAgree) {
  // The reduction engine is observable two ways — SendStats red_* fields
  // and the tempi.red.* trace counters — and they must agree, including
  // across a mix of engine-serviced, fallback, and derived calls.
  tempi::ScopedInterposer guard;
  tempi::reset_send_stats();
  sysmpi::RunConfig cfg;
  cfg.ranks = 4;
  cfg.ranks_per_node = 2;
  sysmpi::run_ranks(cfg, [](int rank) {
    MPI_Init(nullptr, nullptr);
    SpaceBuffer dev_s(vcuda::MemorySpace::Device, 64 * sizeof(int));
    SpaceBuffer dev_r(vcuda::MemorySpace::Device, 64 * sizeof(int));
    std::vector<int> vals(64, rank + 1);
    std::memcpy(dev_s.get(), vals.data(), 64 * sizeof(int));
    // Named device reduction: engine-serviced on every rank.
    MPI_Allreduce(dev_s.get(), dev_r.get(), 64, MPI_INT, MPI_SUM,
                  MPI_COMM_WORLD);
    // Derived uniform-base reduction: engine-serviced (no system path).
    MPI_Datatype t = nullptr;
    MPI_Type_vector(8, 2, 5, MPI_INT, &t);
    MPI_Type_commit(&t);
    SpaceBuffer obj_s(vcuda::MemorySpace::Device, 4096);
    SpaceBuffer obj_r(vcuda::MemorySpace::Device, 4096);
    std::memset(obj_s.get(), 0, obj_s.size());
    MPI_Reduce(obj_s.get(), obj_r.get(), 2, t, MPI_SUM, 0, MPI_COMM_WORLD);
    MPI_Type_free(&t);
    // Host buffers on a named type: per-rank residency fallback.
    std::vector<int> host_r(64);
    MPI_Allreduce(vals.data(), host_r.data(), 64, MPI_INT, MPI_SUM,
                  MPI_COMM_WORLD);
    MPI_Finalize();
  });
  const tempi::SendStats s = tempi::send_stats();
  EXPECT_EQ(s.red_allreduce, 4u);
  EXPECT_EQ(s.red_reduce, 4u);
  EXPECT_EQ(s.red_fallback, 4u);
  EXPECT_GT(s.red_peer_legs, 0u);
  EXPECT_GT(s.red_kernel_launches, 0u);
  EXPECT_EQ(s.red_allreduce,
            tempi::trace::counter_value("tempi.red.allreduce"));
  EXPECT_EQ(s.red_reduce, tempi::trace::counter_value("tempi.red.reduce"));
  EXPECT_EQ(s.red_reduce_scatter,
            tempi::trace::counter_value("tempi.red.reduce_scatter"));
  EXPECT_EQ(s.red_fallback,
            tempi::trace::counter_value("tempi.red.fallback"));
  EXPECT_EQ(s.red_peer_legs,
            tempi::trace::counter_value("tempi.red.peer_legs"));
  EXPECT_EQ(s.red_kernel_launches,
            tempi::trace::counter_value("tempi.red.kernel_launches"));
  tempi::reset_send_stats();
  EXPECT_EQ(tempi::send_stats().red_allreduce, 0u);
  EXPECT_EQ(tempi::send_stats().red_fallback, 0u);
}

TEST(Interposer, PersistentCountersTrackChannelsAndReplays) {
  tempi::ScopedInterposer guard;
  tempi::reset_send_stats();
  const tempi::SendStats before = tempi::send_stats();
  EXPECT_EQ(before.persistent_init, 0u);
  EXPECT_EQ(before.persistent_start, 0u);
  EXPECT_EQ(before.persistent_replay_hits, 0u);
  EXPECT_EQ(before.persistent_graph_launches, 0u);
  EXPECT_EQ(before.persistent_forwarded, 0u);

  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = committed_vector(64, 8, 24);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    SpaceBuffer buf(vcuda::MemorySpace::Device,
                    static_cast<std::size_t>(extent) + 16);
    MPI_Request req = MPI_REQUEST_NULL;
    if (rank == 0) {
      fill_pattern(buf.get(), buf.size());
      EXPECT_EQ(MPI_Send_init(buf.get(), 1, t, 1, 0, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
    } else {
      EXPECT_EQ(MPI_Recv_init(buf.get(), 1, t, 0, 0, MPI_COMM_WORLD, &req),
                MPI_SUCCESS);
    }
    for (int it = 0; it < 3; ++it) {
      EXPECT_EQ(MPI_Start(&req), MPI_SUCCESS);
      EXPECT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
    }
    // A host-buffer init falls through to the system path and counts as
    // forwarded.
    std::vector<std::byte> host(static_cast<std::size_t>(extent) + 16);
    MPI_Request fwd = MPI_REQUEST_NULL;
    EXPECT_EQ(MPI_Send_init(host.data(), 1, t, rank == 0 ? 1 : 0, 99,
                            MPI_COMM_WORLD, &fwd),
              MPI_SUCCESS);
    EXPECT_EQ(MPI_Request_free(&fwd), MPI_SUCCESS);
    EXPECT_EQ(MPI_Request_free(&req), MPI_SUCCESS);
    MPI_Type_free(&t);
    MPI_Finalize();
  });

  const tempi::SendStats after = tempi::send_stats();
  EXPECT_EQ(after.persistent_init, 2u);  // one accelerated channel per rank
  EXPECT_EQ(after.persistent_start, 6u); // three arms per rank
  // Send arms replay at Start, receive armings replay at completion:
  // every arming is a replay hit backed by at least one graph launch.
  EXPECT_EQ(after.persistent_replay_hits, 6u);
  EXPECT_GE(after.persistent_graph_launches, 6u);
  EXPECT_EQ(after.persistent_forwarded, 2u); // the host-buffer inits

  tempi::reset_send_stats();
  const tempi::SendStats cleared = tempi::send_stats();
  EXPECT_EQ(cleared.persistent_init, 0u);
  EXPECT_EQ(cleared.persistent_start, 0u);
  EXPECT_EQ(cleared.persistent_replay_hits, 0u);
  EXPECT_EQ(cleared.persistent_graph_launches, 0u);
  EXPECT_EQ(cleared.persistent_forwarded, 0u);
}

} // namespace
