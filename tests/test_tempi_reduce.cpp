// The reduction engine (tempi/reduce.*): device combine kernels vs a
// host reference across the op x word matrix, engine-vs-system bitwise
// equivalence for named datatypes (including mixed engine/system ranks in
// one call), derived-datatype correctness against an elementwise oracle
// under every schedule, floating-point schedule determinism, MPI_IN_PLACE,
// zero counts, self-only comms, the TEMPI_RED kill-switch, and the
// fig16-scale 256-rank case.
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/kernels.hpp"
#include "tempi/packer.hpp"
#include "tempi/reduce.hpp"
#include "tempi/tempi.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <random>
#include <vector>

namespace {

using testing_helpers::reference_pack;
using testing_helpers::reference_unpack;
using testing_helpers::SpaceBuffer;

using tempi::ReduceOp;
using tempi::ReduceWord;
using tempi::red::Schedule;

// --- device combine kernels --------------------------------------------------

template <typename T> T host_combine(ReduceOp op, T a, T b) {
  switch (op) {
  case ReduceOp::Sum: return static_cast<T>(a + b);
  case ReduceOp::Prod: return static_cast<T>(a * b);
  case ReduceOp::Min: return b < a ? b : a;
  case ReduceOp::Max: return a < b ? b : a;
  default: break;
  }
  if constexpr (std::is_integral_v<T>) {
    switch (op) {
    case ReduceOp::Lor: return static_cast<T>((a != 0) || (b != 0) ? 1 : 0);
    case ReduceOp::Land: return static_cast<T>((a != 0) && (b != 0) ? 1 : 0);
    case ReduceOp::Bor: return static_cast<T>(a | b);
    case ReduceOp::Band: return static_cast<T>(a & b);
    default: break;
    }
  }
  return a;
}

template <typename T> ReduceWord word_of();
template <> ReduceWord word_of<std::int32_t>() { return ReduceWord::I32; }
template <> ReduceWord word_of<std::int64_t>() { return ReduceWord::I64; }
template <> ReduceWord word_of<float>() { return ReduceWord::F32; }
template <> ReduceWord word_of<double>() { return ReduceWord::F64; }

template <typename T> void check_kernel_op(ReduceOp op) {
  constexpr std::size_t kCount = 257; // odd: off any block-size multiple
  SpaceBuffer inout(vcuda::MemorySpace::Device, kCount * sizeof(T));
  SpaceBuffer in(vcuda::MemorySpace::Device, kCount * sizeof(T));
  std::vector<T> a(kCount), b(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    // Small signed values: exact in every word type, mix of zeros and
    // negatives so the logical ops see both truth values.
    a[i] = static_cast<T>(static_cast<int>(i % 7) - 3);
    b[i] = static_cast<T>(static_cast<int>(i % 5) - 2);
  }
  std::memcpy(inout.get(), a.data(), kCount * sizeof(T));
  std::memcpy(in.get(), b.data(), kCount * sizeof(T));
  ASSERT_EQ(tempi::launch_reduce(op, word_of<T>(), inout.get(), in.get(),
                                 kCount, vcuda::default_stream()),
            vcuda::Error::Success);
  vcuda::StreamSynchronize(vcuda::default_stream());
  std::vector<T> got(kCount);
  std::memcpy(got.data(), inout.get(), kCount * sizeof(T));
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(got[i], host_combine<T>(op, a[i], b[i]))
        << "op " << static_cast<int>(op) << " index " << i;
  }
}

TEST(ReduceKernels, OpWordMatrixMatchesHostReference) {
  const ReduceOp all[] = {ReduceOp::Sum,  ReduceOp::Prod, ReduceOp::Min,
                          ReduceOp::Max,  ReduceOp::Lor,  ReduceOp::Land,
                          ReduceOp::Bor,  ReduceOp::Band};
  const ReduceOp arith[] = {ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min,
                            ReduceOp::Max};
  for (ReduceOp op : all) {
    check_kernel_op<std::int32_t>(op);
    check_kernel_op<std::int64_t>(op);
  }
  for (ReduceOp op : arith) {
    check_kernel_op<float>(op);
    check_kernel_op<double>(op);
  }
}

TEST(ReduceKernels, FloatingWordsRejectLogicalAndBitwiseOps) {
  SpaceBuffer buf(vcuda::MemorySpace::Device, 64);
  for (ReduceOp op :
       {ReduceOp::Lor, ReduceOp::Land, ReduceOp::Bor, ReduceOp::Band}) {
    EXPECT_EQ(tempi::launch_reduce(op, ReduceWord::F32, buf.get(), buf.get(),
                                   4, vcuda::default_stream()),
              vcuda::Error::InvalidValue);
    EXPECT_EQ(tempi::launch_reduce(op, ReduceWord::F64, buf.get(), buf.get(),
                                   4, vcuda::default_stream()),
              vcuda::Error::InvalidValue);
  }
}

TEST(ReduceKernels, SpanCombineMatchesContiguousReference) {
  // launch_reduce_spans must fold a packed stream into the strided
  // objects exactly like unpack + elementwise combine would.
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  MPI_Datatype t = nullptr;
  MPI_Type_vector(8, 4, 12, MPI_INT, &t);
  MPI_Type_commit(&t);
  const auto packer = tempi::find_packer(t);
  ASSERT_NE(packer, nullptr);
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  constexpr int kObjects = 3;
  const std::size_t packed = packer->packed_bytes(kObjects);
  const std::size_t words = packed / sizeof(std::int32_t);

  SpaceBuffer obj(vcuda::MemorySpace::Device,
                  kObjects * static_cast<std::size_t>(extent) + 64);
  SpaceBuffer stream(vcuda::MemorySpace::Device, packed);
  std::vector<std::int32_t> base(words), addend(words);
  for (std::size_t i = 0; i < words; ++i) {
    base[i] = static_cast<std::int32_t>(i) * 3 + 1;
    addend[i] = 1000 - static_cast<std::int32_t>(i);
  }
  std::memset(obj.get(), 0, obj.size());
  {
    std::vector<std::byte> seed(packed);
    std::memcpy(seed.data(), base.data(), packed);
    reference_unpack(obj.get(), kObjects, *t, seed);
  }
  std::memcpy(stream.get(), addend.data(), packed);
  const tempi::PackSpan span{0, 0, kObjects};
  ASSERT_EQ(tempi::launch_reduce_spans(
                ReduceOp::Sum, ReduceWord::I32, packer->plan(),
                packer->block(), packer->type_extent(), obj.get(),
                stream.get(), std::span<const tempi::PackSpan>(&span, 1),
                vcuda::default_stream()),
            vcuda::Error::Success);
  vcuda::StreamSynchronize(vcuda::default_stream());
  const std::vector<std::byte> out = reference_pack(obj.get(), kObjects, *t);
  ASSERT_EQ(out.size(), packed);
  std::vector<std::int32_t> got(words);
  std::memcpy(got.data(), out.data(), packed);
  for (std::size_t i = 0; i < words; ++i) {
    ASSERT_EQ(got[i], base[i] + addend[i]) << "word " << i;
  }
  MPI_Type_free(&t);
}

// --- shared run harnesses ----------------------------------------------------

vcuda::MemorySpace all_device(int) { return vcuda::MemorySpace::Device; }

/// One MPI_Allreduce of `count` T elements on `ranks` ranks; returns
/// every rank's raw result bytes (memcmp-strict: float comparisons here
/// mean bitwise agreement, not approximate equality).
template <typename T>
std::vector<std::vector<std::byte>>
run_allreduce_named(bool engine, int ranks, int rpn, MPI_Datatype dt,
                    MPI_Op op, int count, bool in_place,
                    const std::function<vcuda::MemorySpace(int)> &space,
                    const std::function<T(int, int)> &value) {
  tempi::red::set_enabled(engine);
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(ranks));
  sysmpi::RunConfig cfg;
  cfg.ranks = ranks;
  cfg.ranks_per_node = rpn;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
    SpaceBuffer sbuf(space(rank), bytes + 8);
    SpaceBuffer rbuf(space(rank), bytes + 8);
    std::vector<T> vals(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      vals[static_cast<std::size_t>(i)] = value(rank, i);
    }
    std::memcpy(sbuf.get(), vals.data(), bytes);
    std::memset(rbuf.get(), 0xAA, rbuf.size());
    if (in_place) {
      std::memcpy(rbuf.get(), vals.data(), bytes);
    }
    ASSERT_EQ(MPI_Allreduce(in_place ? MPI_IN_PLACE : sbuf.get(), rbuf.get(),
                            count, dt, op, MPI_COMM_WORLD),
              MPI_SUCCESS);
    out[static_cast<std::size_t>(rank)].assign(rbuf.bytes(),
                                               rbuf.bytes() + bytes);
    MPI_Finalize();
  });
  tempi::red::set_enabled(true);
  return out;
}

/// A nested strided derived type over one uniform named `base` — the
/// shape family the engine admits. Seeded so every rank builds the same
/// type.
MPI_Datatype uniform_strided_type(std::mt19937 &gen, MPI_Datatype base) {
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen);
  };
  MPI_Datatype inner = nullptr;
  MPI_Type_vector(pick(2, 5), pick(1, 3), pick(4, 7), base, &inner);
  MPI_Datatype outer = nullptr;
  MPI_Type_contiguous(pick(1, 3), inner, &outer);
  MPI_Type_free(&inner);
  MPI_Type_commit(&outer);
  return outer;
}

/// One derived-datatype MPI_Allreduce under `forced`, validated against
/// the elementwise oracle (sum over ranks at every packed element slot).
/// `space(rank)` mixes Fused (device) and Host mode ranks in one call.
void run_allreduce_derived_int(
    int ranks, int rpn, unsigned seed, Schedule forced, bool in_place,
    const std::function<vcuda::MemorySpace(int)> &space) {
  tempi::red::set_forced_schedule(forced);
  sysmpi::RunConfig cfg;
  cfg.ranks = ranks;
  cfg.ranks_per_node = rpn;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    std::mt19937 gen(seed);
    MPI_Datatype t = uniform_strided_type(gen, MPI_INT);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    const int count = 3;
    const std::size_t packed = static_cast<std::size_t>(t->size) * count;
    const std::size_t words = packed / sizeof(std::int32_t);
    SpaceBuffer sbuf(space(rank),
                     static_cast<std::size_t>(extent) * count + 64);
    SpaceBuffer rbuf(space(rank),
                     static_cast<std::size_t>(extent) * count + 64);
    std::vector<std::int32_t> mine(words);
    for (std::size_t i = 0; i < words; ++i) {
      mine[i] = rank * 1000 + static_cast<std::int32_t>(i);
    }
    std::vector<std::byte> stream(packed);
    std::memcpy(stream.data(), mine.data(), packed);
    std::memset(sbuf.get(), 0x55, sbuf.size());
    std::memset(rbuf.get(), 0xAA, rbuf.size());
    if (in_place) {
      reference_unpack(rbuf.get(), count, *t, stream);
    } else {
      reference_unpack(sbuf.get(), count, *t, stream);
    }
    ASSERT_EQ(MPI_Allreduce(in_place ? MPI_IN_PLACE : sbuf.get(), rbuf.get(),
                            count, t, MPI_SUM, MPI_COMM_WORLD),
              MPI_SUCCESS);
    const std::vector<std::byte> out = reference_pack(rbuf.get(), count, *t);
    std::vector<std::int32_t> got(words);
    std::memcpy(got.data(), out.data(), packed);
    for (std::size_t i = 0; i < words; ++i) {
      std::int32_t want = 0;
      for (int r = 0; r < ranks; ++r) {
        want += r * 1000 + static_cast<std::int32_t>(i);
      }
      ASSERT_EQ(got[i], want)
          << "rank " << rank << " word " << i << " schedule "
          << tempi::red::schedule_name(forced);
    }
    // The unpack writes only the type's data blocks: the gap bytes of a
    // non-in-place recvbuf keep their sentinel.
    if (!in_place) {
      std::vector<std::byte> gaps(static_cast<std::size_t>(extent) * count,
                                  std::byte{0xAA});
      reference_unpack(gaps.data(), count, *t, out);
      EXPECT_EQ(std::memcmp(gaps.data(), rbuf.get(), gaps.size()), 0);
    }
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::red::set_forced_schedule(Schedule::Auto);
}

// --- named-datatype equivalence (engine vs system, bitwise) ------------------

TEST(Reduce, NamedAllreduceMatchesSystemBitwise) {
  tempi::ScopedInterposer guard;
  const auto ints = [](int r, int i) {
    return static_cast<std::int32_t>((r + 1) * (i + 3) - 7);
  };
  const auto dbls = [](int r, int i) {
    return 1.0 / (r + 1) + 1e-9 * i; // association-sensitive
  };
  const auto e1 = run_allreduce_named<std::int32_t>(
      true, 4, 2, MPI_INT, MPI_SUM, 19, false, all_device, ints);
  const auto s1 = run_allreduce_named<std::int32_t>(
      false, 4, 2, MPI_INT, MPI_SUM, 19, false, all_device, ints);
  EXPECT_EQ(e1, s1);
  // Doubles: the engine's named linear schedule replays the system
  // association order, so even rounding agrees bit for bit.
  const auto e2 = run_allreduce_named<double>(
      true, 5, 2, MPI_DOUBLE, MPI_SUM, 33, false, all_device, dbls);
  const auto s2 = run_allreduce_named<double>(
      false, 5, 2, MPI_DOUBLE, MPI_SUM, 33, false, all_device, dbls);
  EXPECT_EQ(e2, s2);
  const auto e3 = run_allreduce_named<std::int32_t>(
      true, 4, 2, MPI_INT, MPI_BOR, 8, false, all_device, ints);
  const auto s3 = run_allreduce_named<std::int32_t>(
      false, 4, 2, MPI_INT, MPI_BOR, 8, false, all_device, ints);
  EXPECT_EQ(e3, s3);
}

TEST(Reduce, NamedAllreduceInPlaceMatchesSystem) {
  tempi::ScopedInterposer guard;
  const auto vals = [](int r, int i) {
    return static_cast<std::int32_t>(r * 31 + i);
  };
  const auto engine = run_allreduce_named<std::int32_t>(
      true, 4, 2, MPI_INT, MPI_MAX, 11, true, all_device, vals);
  const auto system = run_allreduce_named<std::int32_t>(
      false, 4, 2, MPI_INT, MPI_MAX, 11, true, all_device, vals);
  EXPECT_EQ(engine, system);
}

TEST(Reduce, MixedEngineAndSystemRanksInteroperate) {
  // Per-rank contract on named types: rank 0 keeps host buffers and rides
  // the system path while the others enter the engine — one collective,
  // bitwise-equal results everywhere.
  tempi::ScopedInterposer guard;
  const auto space = [](int rank) {
    return rank == 0 ? vcuda::MemorySpace::Pageable
                     : vcuda::MemorySpace::Device;
  };
  const auto vals = [](int r, int i) {
    return 0.5 * (r + 1) + 1e-8 * (i + 1);
  };
  const auto mixed = run_allreduce_named<double>(
      true, 4, 2, MPI_DOUBLE, MPI_SUM, 21, false, space, vals);
  const auto system = run_allreduce_named<double>(
      false, 4, 2, MPI_DOUBLE, MPI_SUM, 21, false, space, vals);
  EXPECT_EQ(mixed, system);
}

TEST(Reduce, NamedAllreduceMatchesSystemAt256Ranks32Nodes) {
  tempi::ScopedInterposer guard;
  const auto vals = [](int r, int i) {
    return 1.0 / (r + 1) + 1e-12 * i;
  };
  const auto engine = run_allreduce_named<double>(
      true, 256, 8, MPI_DOUBLE, MPI_SUM, 5, false, all_device, vals);
  const auto system = run_allreduce_named<double>(
      false, 256, 8, MPI_DOUBLE, MPI_SUM, 5, false, all_device, vals);
  ASSERT_EQ(engine.size(), system.size());
  for (std::size_t r = 0; r < engine.size(); ++r) {
    ASSERT_EQ(engine[r], system[r]) << "rank " << r;
  }
}

// --- derived-datatype engine (every rank in the engine) ----------------------

TEST(Reduce, DerivedAllreduceMatchesOracleUnderEverySchedule) {
  tempi::ScopedInterposer guard;
  for (Schedule s : {Schedule::Auto, Schedule::Linear, Schedule::Ring,
                     Schedule::Doubling}) {
    // P = 5: non-power-of-two, so recursive doubling exercises the
    // extra-rank pre/post exchanges.
    run_allreduce_derived_int(5, 2, 42u, s, false, all_device);
  }
}

TEST(Reduce, DerivedAllreduceHostModeRanksMatchOracle) {
  // Derived types have no functioning system path, so host-resident
  // ranks run the engine in Host mode (baseline pack + apply_reduce) —
  // same packed wire, same result.
  tempi::ScopedInterposer guard;
  const auto space = [](int rank) {
    return rank % 2 == 0 ? vcuda::MemorySpace::Pageable
                         : vcuda::MemorySpace::Device;
  };
  run_allreduce_derived_int(4, 2, 7u, Schedule::Ring, false, space);
  run_allreduce_derived_int(4, 2, 7u, Schedule::Doubling, false, space);
}

TEST(Reduce, DerivedAllreduceInPlaceMatchesOracle) {
  tempi::ScopedInterposer guard;
  run_allreduce_derived_int(4, 2, 9u, Schedule::Ring, true, all_device);
  run_allreduce_derived_int(4, 2, 9u, Schedule::Linear, true, all_device);
}

TEST(Reduce, SelfOnlyCommAndZeroCount) {
  tempi::ScopedInterposer guard;
  // P = 1 under every schedule: the engine degenerates to pack + unpack.
  for (Schedule s : {Schedule::Linear, Schedule::Ring, Schedule::Doubling}) {
    run_allreduce_derived_int(1, 1, 3u, s, false, all_device);
  }
  // A zero-count derived call must consume its collective-sequence slots
  // so a following reduction still pairs correctly.
  sysmpi::RunConfig cfg;
  cfg.ranks = 3;
  cfg.ranks_per_node = 2;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(4, 2, 5, MPI_INT, &t);
    MPI_Type_commit(&t);
    SpaceBuffer buf(vcuda::MemorySpace::Device, 256);
    ASSERT_EQ(MPI_Allreduce(buf.get(), buf.bytes() + 128, 0, t, MPI_SUM,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    std::int32_t v = rank + 1;
    std::int32_t sum = 0;
    SpaceBuffer dv(vcuda::MemorySpace::Device, sizeof(v));
    SpaceBuffer dsum(vcuda::MemorySpace::Device, sizeof(sum));
    std::memcpy(dv.get(), &v, sizeof(v));
    ASSERT_EQ(MPI_Allreduce(dv.get(), dsum.get(), 1, MPI_INT, MPI_SUM,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    std::memcpy(&sum, dsum.get(), sizeof(sum));
    EXPECT_EQ(sum, 6);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
}

// --- floating-point schedule ordering ----------------------------------------

/// One forced-schedule float-SUM allreduce over a derived type; returns
/// rank 0's packed result bytes.
std::vector<std::byte> float_sum_once(Schedule forced, unsigned seed) {
  tempi::red::set_forced_schedule(forced);
  std::vector<std::byte> out;
  sysmpi::RunConfig cfg;
  cfg.ranks = 8;
  cfg.ranks_per_node = 2;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = nullptr;
    MPI_Type_vector(16, 4, 9, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    const std::size_t packed = static_cast<std::size_t>(t->size);
    const std::size_t words = packed / sizeof(float);
    std::mt19937 gen(seed + static_cast<unsigned>(rank) * 977u);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    std::vector<float> mine(words);
    for (auto &f : mine) {
      f = dist(gen);
    }
    std::vector<std::byte> stream(packed);
    std::memcpy(stream.data(), mine.data(), packed);
    SpaceBuffer sbuf(vcuda::MemorySpace::Device,
                     static_cast<std::size_t>(extent) + 64);
    SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                     static_cast<std::size_t>(extent) + 64);
    std::memset(sbuf.get(), 0, sbuf.size());
    std::memset(rbuf.get(), 0, rbuf.size());
    reference_unpack(sbuf.get(), 1, *t, stream);
    ASSERT_EQ(MPI_Allreduce(sbuf.get(), rbuf.get(), 1, t, MPI_SUM,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    if (rank == 0) {
      out = reference_pack(rbuf.get(), 1, *t);
    }
    // Every schedule is rank-symmetric for allreduce: all ranks must
    // agree bitwise. Verify by reducing the packed result again with a
    // bitwise op over named ints.
    const std::vector<std::byte> me = reference_pack(rbuf.get(), 1, *t);
    std::vector<std::int32_t> words32(words);
    std::memcpy(words32.data(), me.data(), packed);
    SpaceBuffer din(vcuda::MemorySpace::Device, packed);
    SpaceBuffer dmin(vcuda::MemorySpace::Device, packed);
    SpaceBuffer dmax(vcuda::MemorySpace::Device, packed);
    std::memcpy(din.get(), words32.data(), packed);
    ASSERT_EQ(MPI_Allreduce(din.get(), dmin.get(),
                            static_cast<int>(words), MPI_INT, MPI_MIN,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Allreduce(din.get(), dmax.get(),
                            static_cast<int>(words), MPI_INT, MPI_MAX,
                            MPI_COMM_WORLD),
              MPI_SUCCESS);
    EXPECT_EQ(std::memcmp(dmin.get(), dmax.get(), packed), 0)
        << "ranks disagree bitwise under "
        << tempi::red::schedule_name(forced);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::red::set_forced_schedule(Schedule::Auto);
  return out;
}

TEST(Reduce, FloatSumSchedulesDeterministicButAssociationDiffers) {
  tempi::ScopedInterposer guard;
  const auto ring1 = float_sum_once(Schedule::Ring, 101u);
  const auto ring2 = float_sum_once(Schedule::Ring, 101u);
  const auto dbl1 = float_sum_once(Schedule::Doubling, 101u);
  const auto dbl2 = float_sum_once(Schedule::Doubling, 101u);
  // Same schedule, same inputs: bitwise reproducible.
  EXPECT_EQ(ring1, ring2);
  EXPECT_EQ(dbl1, dbl2);
  // Different association order: the 8-rank random sums round
  // differently somewhere in the 64 elements.
  EXPECT_NE(ring1, dbl1);
  // Both stay within float tolerance of the double-precision reference.
  const std::size_t words = ring1.size() / sizeof(float);
  std::vector<float> ringf(words), dblf(words);
  std::memcpy(ringf.data(), ring1.data(), ring1.size());
  std::memcpy(dblf.data(), dbl1.data(), dbl1.size());
  for (std::size_t i = 0; i < words; ++i) {
    double want = 0.0;
    for (int r = 0; r < 8; ++r) {
      std::mt19937 gen(101u + static_cast<unsigned>(r) * 977u);
      std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
      float v = 0.0f;
      for (std::size_t j = 0; j <= i; ++j) {
        v = dist(gen);
      }
      want += v;
    }
    EXPECT_NEAR(ringf[i], want, 1e-4) << "element " << i;
    EXPECT_NEAR(dblf[i], want, 1e-4) << "element " << i;
  }
}

// --- MPI_Reduce --------------------------------------------------------------

TEST(Reduce, NamedReduceMatchesSystemBitwise) {
  tempi::ScopedInterposer guard;
  std::vector<std::byte> results[2];
  for (const bool engine : {true, false}) {
    tempi::red::set_enabled(engine);
    auto &root_out = results[engine ? 0 : 1];
    sysmpi::RunConfig cfg;
    cfg.ranks = 5;
    cfg.ranks_per_node = 2;
    sysmpi::run_ranks(cfg, [&](int rank) {
      MPI_Init(nullptr, nullptr);
      constexpr int kCount = 17;
      constexpr int kRoot = 2;
      const std::size_t bytes = kCount * sizeof(double);
      SpaceBuffer sbuf(vcuda::MemorySpace::Device, bytes);
      SpaceBuffer rbuf(vcuda::MemorySpace::Device, bytes);
      std::vector<double> vals(kCount);
      for (int i = 0; i < kCount; ++i) {
        vals[static_cast<std::size_t>(i)] = 1.0 / (rank + 2) + 1e-10 * i;
      }
      std::memcpy(sbuf.get(), vals.data(), bytes);
      std::memset(rbuf.get(), 0xCC, bytes);
      const bool in_place = rank == kRoot;
      if (in_place) {
        std::memcpy(rbuf.get(), vals.data(), bytes);
      }
      ASSERT_EQ(MPI_Reduce(in_place ? MPI_IN_PLACE : sbuf.get(), rbuf.get(),
                           kCount, MPI_DOUBLE, MPI_SUM, kRoot,
                           MPI_COMM_WORLD),
                MPI_SUCCESS);
      if (rank == kRoot) {
        root_out.assign(rbuf.bytes(), rbuf.bytes() + bytes);
      } else {
        // Non-root recvbuf is not a significant argument: untouched.
        std::vector<std::byte> sentinel(bytes, std::byte{0xCC});
        EXPECT_EQ(std::memcmp(rbuf.get(), sentinel.data(), bytes), 0);
      }
      MPI_Finalize();
    });
  }
  tempi::red::set_enabled(true);
  EXPECT_EQ(results[0], results[1]);
}

TEST(Reduce, DerivedReduceMatchesOracleBothSchedules) {
  tempi::ScopedInterposer guard;
  for (Schedule s : {Schedule::Linear, Schedule::Doubling}) {
    tempi::red::set_forced_schedule(s);
    sysmpi::RunConfig cfg;
    cfg.ranks = 6;
    cfg.ranks_per_node = 2;
    sysmpi::run_ranks(cfg, [&](int rank) {
      MPI_Init(nullptr, nullptr);
      std::mt19937 gen(55u);
      MPI_Datatype t = uniform_strided_type(gen, MPI_INT);
      MPI_Aint lb = 0, extent = 0;
      MPI_Type_get_extent(t, &lb, &extent);
      constexpr int kCount = 2;
      constexpr int kRoot = 3;
      const std::size_t packed = static_cast<std::size_t>(t->size) * kCount;
      const std::size_t words = packed / sizeof(std::int32_t);
      SpaceBuffer sbuf(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(extent) * kCount + 64);
      SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(extent) * kCount + 64);
      std::vector<std::int32_t> mine(words);
      for (std::size_t i = 0; i < words; ++i) {
        mine[i] = (rank + 1) * 100 - static_cast<std::int32_t>(i);
      }
      std::vector<std::byte> stream(packed);
      std::memcpy(stream.data(), mine.data(), packed);
      std::memset(sbuf.get(), 0, sbuf.size());
      std::memset(rbuf.get(), 0, rbuf.size());
      reference_unpack(sbuf.get(), kCount, *t, stream);
      ASSERT_EQ(MPI_Reduce(sbuf.get(), rbuf.get(), kCount, t, MPI_SUM, kRoot,
                           MPI_COMM_WORLD),
                MPI_SUCCESS);
      if (rank == kRoot) {
        const std::vector<std::byte> out =
            reference_pack(rbuf.get(), kCount, *t);
        std::vector<std::int32_t> got(words);
        std::memcpy(got.data(), out.data(), packed);
        for (std::size_t i = 0; i < words; ++i) {
          std::int32_t want = 0;
          for (int r = 0; r < 6; ++r) {
            want += (r + 1) * 100 - static_cast<std::int32_t>(i);
          }
          ASSERT_EQ(got[i], want) << "word " << i;
        }
      }
      MPI_Type_free(&t);
      MPI_Finalize();
    });
    tempi::red::set_forced_schedule(Schedule::Auto);
  }
}

// --- MPI_Reduce_scatter(_block) ----------------------------------------------

TEST(Reduce, NamedReduceScatterMatchesSystemBitwise) {
  tempi::ScopedInterposer guard;
  std::vector<std::vector<std::byte>> results[2];
  for (const bool engine : {true, false}) {
    tempi::red::set_enabled(engine);
    auto &out = results[engine ? 0 : 1];
    out.assign(4, {});
    sysmpi::RunConfig cfg;
    cfg.ranks = 4;
    cfg.ranks_per_node = 2;
    sysmpi::run_ranks(cfg, [&](int rank) {
      MPI_Init(nullptr, nullptr);
      const int recvcounts[4] = {3, 0, 5, 2}; // a zero-segment rank
      const int total = 10;
      const std::size_t bytes = total * sizeof(double);
      SpaceBuffer sbuf(vcuda::MemorySpace::Device, bytes);
      SpaceBuffer rbuf(vcuda::MemorySpace::Device, bytes + 8);
      std::vector<double> vals(total);
      for (int i = 0; i < total; ++i) {
        vals[static_cast<std::size_t>(i)] = 1.0 / (rank + 1) + 1e-9 * i;
      }
      std::memcpy(sbuf.get(), vals.data(), bytes);
      std::memset(rbuf.get(), 0, rbuf.size());
      ASSERT_EQ(MPI_Reduce_scatter(sbuf.get(), rbuf.get(), recvcounts,
                                   MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD),
                MPI_SUCCESS);
      out[static_cast<std::size_t>(rank)].assign(
          rbuf.bytes(),
          rbuf.bytes() + static_cast<std::size_t>(recvcounts[rank]) *
                             sizeof(double));
      MPI_Finalize();
    });
  }
  tempi::red::set_enabled(true);
  for (std::size_t r = 0; r < results[0].size(); ++r) {
    EXPECT_EQ(results[0][r], results[1][r]) << "rank " << r;
  }
}

TEST(Reduce, DerivedReduceScatterMatchesOracleEverySchedule) {
  tempi::ScopedInterposer guard;
  for (Schedule s : {Schedule::Linear, Schedule::Ring, Schedule::Doubling}) {
    tempi::red::set_forced_schedule(s);
    sysmpi::RunConfig cfg;
    cfg.ranks = 4;
    cfg.ranks_per_node = 2;
    sysmpi::run_ranks(cfg, [&](int rank) {
      MPI_Init(nullptr, nullptr);
      std::mt19937 gen(77u);
      MPI_Datatype t = uniform_strided_type(gen, MPI_INT);
      MPI_Aint lb = 0, extent = 0;
      MPI_Type_get_extent(t, &lb, &extent);
      const int recvcounts[4] = {2, 0, 3, 1};
      const int total = 6;
      const std::size_t packed = static_cast<std::size_t>(t->size) * total;
      const std::size_t words_per_obj =
          static_cast<std::size_t>(t->size) / sizeof(std::int32_t);
      SpaceBuffer sbuf(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(extent) * total + 64);
      SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                       static_cast<std::size_t>(extent) * total + 64);
      std::vector<std::int32_t> mine(packed / sizeof(std::int32_t));
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = (rank + 2) * 10 + static_cast<std::int32_t>(i);
      }
      std::vector<std::byte> stream(packed);
      std::memcpy(stream.data(), mine.data(), packed);
      std::memset(sbuf.get(), 0, sbuf.size());
      std::memset(rbuf.get(), 0, rbuf.size());
      reference_unpack(sbuf.get(), total, *t, stream);
      ASSERT_EQ(MPI_Reduce_scatter(sbuf.get(), rbuf.get(), recvcounts, t,
                                   MPI_SUM, MPI_COMM_WORLD),
                MPI_SUCCESS);
      int seg_first = 0; // first object index of my segment
      for (int r = 0; r < rank; ++r) {
        seg_first += recvcounts[r];
      }
      const int myn = recvcounts[rank];
      if (myn > 0) {
        const std::vector<std::byte> out =
            reference_pack(rbuf.get(), myn, *t);
        std::vector<std::int32_t> got(out.size() / sizeof(std::int32_t));
        std::memcpy(got.data(), out.data(), out.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          const std::size_t global =
              static_cast<std::size_t>(seg_first) * words_per_obj + i;
          std::int32_t want = 0;
          for (int r = 0; r < 4; ++r) {
            want += (r + 2) * 10 + static_cast<std::int32_t>(global);
          }
          ASSERT_EQ(got[i], want)
              << "rank " << rank << " word " << i << " schedule "
              << tempi::red::schedule_name(s);
        }
      }
      MPI_Type_free(&t);
      MPI_Finalize();
    });
    tempi::red::set_forced_schedule(Schedule::Auto);
  }
}

TEST(Reduce, NamedReduceScatterBlockMatchesSystem) {
  tempi::ScopedInterposer guard;
  std::vector<std::vector<std::byte>> results[2];
  for (const bool engine : {true, false}) {
    tempi::red::set_enabled(engine);
    auto &out = results[engine ? 0 : 1];
    out.assign(4, {});
    sysmpi::RunConfig cfg;
    cfg.ranks = 4;
    cfg.ranks_per_node = 2;
    sysmpi::run_ranks(cfg, [&](int rank) {
      MPI_Init(nullptr, nullptr);
      constexpr int kBlock = 3;
      const std::size_t bytes = 4 * kBlock * sizeof(std::int64_t);
      SpaceBuffer sbuf(vcuda::MemorySpace::Device, bytes);
      SpaceBuffer rbuf(vcuda::MemorySpace::Device,
                       kBlock * sizeof(std::int64_t));
      std::vector<std::int64_t> vals(4 * kBlock);
      for (std::size_t i = 0; i < vals.size(); ++i) {
        vals[i] = (rank + 1) * 7 + static_cast<std::int64_t>(i);
      }
      std::memcpy(sbuf.get(), vals.data(), bytes);
      std::memset(rbuf.get(), 0, rbuf.size());
      ASSERT_EQ(MPI_Reduce_scatter_block(sbuf.get(), rbuf.get(), kBlock,
                                         MPI_LONG_LONG, MPI_SUM,
                                         MPI_COMM_WORLD),
                MPI_SUCCESS);
      out[static_cast<std::size_t>(rank)].assign(rbuf.bytes(),
                                                 rbuf.bytes() + rbuf.size());
      MPI_Finalize();
    });
  }
  tempi::red::set_enabled(true);
  for (std::size_t r = 0; r < results[0].size(); ++r) {
    EXPECT_EQ(results[0][r], results[1][r]) << "rank " << r;
  }
}

// --- gates, schedules, counters ----------------------------------------------

TEST(Reduce, ScheduleChoiceFlipsAcrossPayloadSizes) {
  tempi::ScopedInterposer guard;
  sysmpi::RunConfig cfg;
  cfg.ranks = 8;
  cfg.ranks_per_node = 2;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      std::vector<Schedule> seen;
      for (std::size_t bytes = 256; bytes <= (64u << 20); bytes <<= 4) {
        seen.push_back(tempi::red::choose_allreduce_schedule(
            bytes, MPI_COMM_WORLD, true));
      }
      // Small payloads avoid the bandwidth-optimal ring; the biggest
      // sweep point rides it. A flip across the sweep is what
      // bench_fig17_allreduce gates on.
      EXPECT_NE(seen.front(), Schedule::Ring);
      EXPECT_EQ(seen.back(), Schedule::Ring);
      // Forcing overrides the model.
      tempi::red::set_forced_schedule(Schedule::Doubling);
      EXPECT_EQ(tempi::red::choose_allreduce_schedule(1u << 22,
                                                      MPI_COMM_WORLD, true),
                Schedule::Doubling);
      tempi::red::set_forced_schedule(Schedule::Auto);
    }
    MPI_Finalize();
  });
}

TEST(Reduce, ShapeGateAdmitsUniformBasesOnly) {
  tempi::ScopedInterposer guard;
  sysmpi::ensure_self_context();
  EXPECT_TRUE(tempi::red::engine_shape_ok(MPI_INT, MPI_SUM));
  EXPECT_TRUE(tempi::red::engine_shape_ok(MPI_DOUBLE, MPI_MIN));
  EXPECT_TRUE(tempi::red::engine_shape_ok(MPI_LONG_LONG, MPI_BAND));
  // Floating-point bitwise/logical ops have no kernel.
  EXPECT_FALSE(tempi::red::engine_shape_ok(MPI_DOUBLE, MPI_BOR));
  EXPECT_FALSE(tempi::red::engine_shape_ok(MPI_FLOAT, MPI_LAND));
  // Sub-word named types have no device word.
  EXPECT_FALSE(tempi::red::engine_shape_ok(MPI_BYTE, MPI_SUM));
  EXPECT_FALSE(tempi::red::engine_shape_ok(MPI_SHORT, MPI_SUM));
  // Derived over a uniform admissible base: ok (given a packer).
  MPI_Datatype vec = nullptr;
  MPI_Type_vector(4, 2, 6, MPI_INT, &vec);
  MPI_Type_commit(&vec);
  EXPECT_TRUE(tempi::red::engine_shape_ok(vec, MPI_SUM));
  EXPECT_FALSE(tempi::red::engine_shape_ok(vec, static_cast<MPI_Op>(nullptr)));
  MPI_Type_free(&vec);
  // Mixed bases: rejected.
  MPI_Datatype mixed = nullptr;
  MPI_Type_vector(4, 2, 6, MPI_SHORT, &mixed);
  MPI_Type_commit(&mixed);
  EXPECT_FALSE(tempi::red::engine_shape_ok(mixed, MPI_SUM));
  MPI_Type_free(&mixed);
}

TEST(Reduce, KillSwitchAndStatsCounters) {
  tempi::ScopedInterposer guard;
  const auto vals = [](int r, int i) {
    return static_cast<std::int32_t>(r + i);
  };
  tempi::reset_send_stats();
  run_allreduce_named<std::int32_t>(true, 4, 2, MPI_INT, MPI_SUM, 8, false,
                                    all_device, vals);
  tempi::SendStats stats = tempi::send_stats();
  EXPECT_EQ(stats.red_allreduce, 4u); // one engine entry per rank
  EXPECT_EQ(stats.red_fallback, 0u);
  EXPECT_GT(stats.red_peer_legs, 0u);
  EXPECT_GT(stats.red_kernel_launches, 0u);

  // Engine disabled: the gate forwards and counts fallbacks instead.
  tempi::reset_send_stats();
  run_allreduce_named<std::int32_t>(false, 4, 2, MPI_INT, MPI_SUM, 8, false,
                                    all_device, vals);
  stats = tempi::send_stats();
  EXPECT_EQ(stats.red_allreduce, 0u);
  EXPECT_EQ(stats.red_fallback, 4u);
  EXPECT_EQ(stats.red_kernel_launches, 0u);

  // Host-only named buffers: the engine's per-rank residency check
  // forwards each rank.
  tempi::reset_send_stats();
  const auto host = [](int) { return vcuda::MemorySpace::Pageable; };
  run_allreduce_named<std::int32_t>(true, 2, 1, MPI_INT, MPI_SUM, 8, false,
                                    host, vals);
  stats = tempi::send_stats();
  EXPECT_EQ(stats.red_allreduce, 0u);
  EXPECT_EQ(stats.red_fallback, 2u);
}

TEST(Reduce, EnvKillSwitchReadAtInstall) {
  // TEMPI_RED mirrors TEMPI_COLL: no-recompile disabling, decided (and
  // logged) at install time.
  setenv("TEMPI_RED", "0", 1);
  tempi::install();
  EXPECT_FALSE(tempi::red::enabled());
  tempi::uninstall();
  setenv("TEMPI_RED", "1", 1);
  tempi::install();
  EXPECT_TRUE(tempi::red::enabled());
  tempi::uninstall();
  unsetenv("TEMPI_RED");
}

} // namespace
