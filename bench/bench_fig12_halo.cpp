// Fig. 12: 3-D stencil halo exchange (Sec. 6.4) across a nodes x
// ranks-per-node sweep:
//   (a) phase times — MPI_Pack, MPI_Neighbor_alltoallv, MPI_Unpack — with
//       TEMPI (pack/unpack roughly constant per rank; alltoallv grows with
//       scale);
//   (b) whole-exchange speedup over the baseline datatype path (largest at
//       small scale, where datatype handling dominates).
//
// Scale note (DESIGN.md §2): ranks are threads, so the sweep covers 1-8
// virtual nodes x {1,2,6} ranks/node (<=48 ranks); the paper's 512-node
// sweep shape is visible in this range. The per-rank brick is scaled to
// 24^3 x 8 doubles (the paper's 256^3 would need 1 GiB per rank).
#include "bench_common.hpp"
#include "halo/halo.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

namespace {

/// Factor `n` into a near-cubic px*py*pz grid.
void factor3(int n, int *px, int *py, int *pz) {
  *px = *py = *pz = 1;
  int rest = n;
  int *dims[3] = {pz, py, px};
  for (int i = 0; i < 3; ++i) {
    const int target = static_cast<int>(std::ceil(
        std::pow(static_cast<double>(rest), 1.0 / (3 - i)) - 1e-9));
    int d = target;
    while (rest % d != 0) {
      ++d;
    }
    *dims[i] = d;
    rest /= d;
  }
}

struct Result {
  halo::PhaseTimes phase; ///< max across ranks
};

Result run(const halo::Config &cfg, int ranks_per_node, int iters) {
  std::vector<halo::PhaseTimes> per_rank(
      static_cast<std::size_t>(cfg.ranks()));
  sysmpi::RunConfig rc;
  rc.ranks = cfg.ranks();
  rc.ranks_per_node = ranks_per_node;
  sysmpi::run_ranks(rc, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    void *grid = nullptr;
    vcuda::Malloc(&grid, cfg.grid_bytes());
    std::memset(grid, 0, cfg.grid_bytes());
    {
      halo::Exchanger ex(cfg, MPI_COMM_WORLD);
      ex.exchange(grid); // warm-up
      halo::PhaseTimes sum;
      for (int i = 0; i < iters; ++i) {
        const halo::PhaseTimes t = ex.exchange(grid);
        sum.pack_us += t.pack_us / iters;
        sum.comm_us += t.comm_us / iters;
        sum.unpack_us += t.unpack_us / iters;
      }
      per_rank[static_cast<std::size_t>(rank)] = sum;
    }
    vcuda::Free(grid);
    MPI_Finalize();
  });
  Result r;
  for (const halo::PhaseTimes &t : per_rank) {
    r.phase.pack_us = std::max(r.phase.pack_us, t.pack_us);
    r.phase.comm_us = std::max(r.phase.comm_us, t.comm_us);
    r.phase.unpack_us = std::max(r.phase.unpack_us, t.unpack_us);
  }
  return r;
}

} // namespace

int main(int argc, char **argv) {
  const bool smoke = bench::smoke_mode();
  const std::vector<int> nodes = smoke ? std::vector<int>{2}
                                       : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> rpns = smoke ? std::vector<int>{1}
                                      : std::vector<int>{1, 2, 6};
  // Larger bricks approach the paper's 256^3 scale (and its speedup
  // magnitudes) at the cost of runtime; 24 keeps the default run fast.
  const int brick = argc > 1 ? std::atoi(argv[1]) : (smoke ? 8 : 24);

  std::printf("Fig. 12 — 3D halo exchange, %d^3 points/rank, 8 doubles/"
              "point, radius 3, 26 neighbors, periodic\n\n", brick);
  std::printf("%-10s %10s %14s %12s | %12s %10s\n", "nodes/rpn", "pack(us)",
              "alltoallv(us)", "unpack(us)", "baseline(us)", "speedup");

  std::vector<double> speedups;
  for (const int n : nodes) {
    for (const int rpn : rpns) {
      const int ranks = n * rpn;
      halo::Config cfg;
      cfg.nx = cfg.ny = cfg.nz = brick;
      cfg.vals = 8;
      cfg.radius = 3;
      factor3(ranks, &cfg.px, &cfg.py, &cfg.pz);

      tempi::install();
      tempi::reset_send_stats();
      const Result fast = run(cfg, rpn, /*iters=*/2);
      const tempi::SendStats stats = tempi::send_stats();
      tempi::uninstall();
      const Result base = run(cfg, rpn, /*iters=*/1);
      // The exchange's Neighbor_alltoallv of device-resident packed bytes
      // rides the collectives engine when TEMPI is installed.
      if (stats.coll_neighbor == 0) {
        std::printf("warning: collectives engine did not service the "
                    "neighbor exchange\n");
      }

      speedups.push_back(base.phase.total_us() / fast.phase.total_us());
      std::printf("%3d/%-6d %10.1f %14.1f %12.1f | %12.1f %9.0fx\n", n, rpn,
                  fast.phase.pack_us, fast.phase.comm_us,
                  fast.phase.unpack_us, base.phase.total_us(),
                  base.phase.total_us() / fast.phase.total_us());
    }
  }
  bench::emit_json("fig12_halo",
                   "3-D halo exchange, TEMPI vs baseline datatype path "
                   "across the nodes x ranks-per-node sweep",
                   support::geomean(speedups));
  std::printf("\nPaper (Fig. 12): pack/unpack constant per rank, alltoallv "
              "grows with ranks and nodes; speedup is largest at small "
              "scale (1050x at 192 ranks, 917x at 3072).\n");
  std::printf("With TEMPI installed, phase 2's MPI_Neighbor_alltoallv is "
              "serviced by the collectives engine (per-peer legs through "
              "the request engine; see bench_fig14_alltoallv for the "
              "datatype-aware sweep).\n");
  return 0;
}
