// Fig. 7: MPI derived datatype creation and commit time for 15 3-D object
// configurations — subarray (0-2), hvector of vector (3-5), hvector of
// hvector of vector (6-11), subarray of vector (12-14) — with and without
// TEMPI interposed.
//
// These phases are pure host work, so wall time is reported (trimean over
// many repetitions), matching the paper's methodology.
#include "bench_common.hpp"
#include "tempi/tempi.hpp"

#include <chrono>
#include <cstdio>
#include <vector>

namespace {

struct Shape {
  int e0, e1, e2; ///< object extent in floats
  int a0, a1;     ///< allocation pitch in bytes (row, plane rows)
};

constexpr Shape kShapes[3] = {
    {16, 4, 4, 128, 8},
    {100, 13, 47, 512, 512},
    {256, 64, 16, 2048, 128},
};

using Builder = MPI_Datatype (*)(const Shape &);

MPI_Datatype build_subarray(const Shape &s) {
  const int sizes[3] = {s.a1, s.a1, s.a0 / 4};
  const int subsizes[3] = {s.e2, s.e1, s.e0};
  const int starts[3] = {0, 0, 0};
  MPI_Datatype t = nullptr;
  MPI_Type_create_subarray(3, sizes, subsizes, starts, MPI_ORDER_C, MPI_FLOAT,
                           &t);
  return t;
}

MPI_Datatype build_hvector_of_vector(const Shape &s) {
  MPI_Datatype plane = nullptr, cuboid = nullptr;
  MPI_Type_vector(s.e1, s.e0, s.a0 / 4, MPI_FLOAT, &plane);
  MPI_Type_create_hvector(s.e2, 1, static_cast<MPI_Aint>(s.a0) * s.a1, plane,
                          &cuboid);
  MPI_Type_free(&plane);
  return cuboid;
}

MPI_Datatype build_hvector_of_hvector_of_vector(const Shape &s) {
  MPI_Datatype row = nullptr, plane = nullptr, cuboid = nullptr;
  MPI_Type_vector(1, s.e0, 1, MPI_FLOAT, &row);
  MPI_Type_create_hvector(s.e1, 1, s.a0, row, &plane);
  MPI_Type_create_hvector(s.e2, 1, static_cast<MPI_Aint>(s.a0) * s.a1, plane,
                          &cuboid);
  MPI_Type_free(&plane);
  MPI_Type_free(&row);
  return cuboid;
}

MPI_Datatype build_hvector_of_hvector_of_vector_bytes(const Shape &s) {
  MPI_Datatype row = nullptr, plane = nullptr, cuboid = nullptr;
  MPI_Type_vector(s.e0, 4, 4, MPI_BYTE, &row);
  MPI_Type_create_hvector(s.e1, 1, s.a0, row, &plane);
  MPI_Type_create_hvector(s.e2, 1, static_cast<MPI_Aint>(s.a0) * s.a1, plane,
                          &cuboid);
  MPI_Type_free(&plane);
  MPI_Type_free(&row);
  return cuboid;
}

MPI_Datatype build_subarray_of_vector(const Shape &s) {
  MPI_Datatype row = nullptr, cuboid = nullptr;
  MPI_Type_vector(1, s.e0, 1, MPI_FLOAT, &row);
  // Treat `row` as the element of a 2-D subarray over (plane, row-slot).
  const int sizes[2] = {s.a1, s.a1};
  const int subsizes[2] = {s.e2, s.e1};
  const int starts[2] = {0, 0};
  MPI_Datatype resized = nullptr;
  // Pad the row to one allocation row so rows tile the plane.
  MPI_Type_create_resized(row, 0, s.a0, &resized);
  MPI_Type_create_subarray(2, sizes, subsizes, starts, MPI_ORDER_C, resized,
                           &cuboid);
  MPI_Type_free(&resized);
  MPI_Type_free(&row);
  return cuboid;
}

struct Config {
  const char *family;
  Builder builder;
  Shape shape;
};

std::vector<Config> configs() {
  std::vector<Config> cfgs;
  for (const Shape &s : kShapes) {
    cfgs.push_back({"subarray", build_subarray, s});
  }
  for (const Shape &s : kShapes) {
    cfgs.push_back({"hv(vec)", build_hvector_of_vector, s});
  }
  for (const Shape &s : kShapes) {
    cfgs.push_back({"hv(hv(vec))", build_hvector_of_hvector_of_vector, s});
  }
  for (const Shape &s : kShapes) {
    cfgs.push_back(
        {"hv(hv(vecB))", build_hvector_of_hvector_of_vector_bytes, s});
  }
  for (const Shape &s : kShapes) {
    cfgs.push_back({"sub(vec)", build_subarray_of_vector, s});
  }
  return cfgs;
}

double wall_us(const std::function<void()> &fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

struct Timings {
  double create_us = 0.0;
  double commit_us = 0.0;
};

Timings measure(const Config &cfg, int iters) {
  support::Sampler create, commit;
  for (int i = 0; i < iters; ++i) {
    MPI_Datatype t = nullptr;
    create.add(wall_us([&] { t = cfg.builder(cfg.shape); }));
    commit.add(wall_us([&] { MPI_Type_commit(&t); }));
    MPI_Type_free(&t);
  }
  return {create.trimean(), commit.trimean()};
}

} // namespace

int main() {
  sysmpi::ensure_self_context();
  const int kIters = bench::smoke_mode() ? 100 : 2000;

  std::printf("Fig. 7 — type creation & commit latency (wall us, trimean "
              "of %d)\n\n", kIters);
  std::printf("%3s %-14s %10s %10s %14s %10s\n", "cfg", "family",
              "create(us)", "commit(us)", "commit(TEMPI)", "slowdown");

  const std::vector<Config> cfgs = configs();
  std::vector<double> slowdowns;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const Timings base = measure(cfgs[i], kIters);
    Timings with_tempi;
    {
      tempi::ScopedInterposer guard;
      with_tempi = measure(cfgs[i], kIters);
    }
    slowdowns.push_back(with_tempi.commit_us / base.commit_us);
    std::printf("%3zu %-14s %10.2f %10.2f %14.2f %9.1fx\n", i,
                cfgs[i].family, base.create_us, base.commit_us,
                with_tempi.commit_us,
                with_tempi.commit_us / base.commit_us);
  }
  std::printf("\nTEMPI slows commit (translation + canonicalization + "
              "kernel selection runs at commit time); the paper reports "
              "3.8-8.3x. This is a one-time cost at startup.\n");
  // The headline here is a *cost* ratio (>1 = commit slower with TEMPI),
  // tracked so commit-time work does not silently balloon across PRs.
  bench::emit_json("fig07_commit",
                   "commit slowdown with TEMPI installed (one-time cost; "
                   "lower is better)",
                   support::geomean(slowdowns));
  return 0;
}
