// Ablation: canonical strided kernels vs the generic blocklist engine
// (Sec. 2's trade-off, quantified). For the same 2-D object:
//   * the canonical packer stores zero device metadata and reaches full
//     coalescing from the StridedBlock parameters;
//   * the blocklist packer spends ~16 B of device memory per contiguous
//     block and pays an indirection penalty per block.
// For irregular (indexed) types only the blocklist engine applies, and it
// still beats the per-block baseline by orders of magnitude.
#include "bench_common.hpp"
#include "tempi/blocklist_packer.hpp"
#include "tempi/packer.hpp"
#include "tempi/tempi.hpp"

#include <cstdio>
#include <numeric>

int main() {
  sysmpi::ensure_self_context();
  std::printf("Ablation — canonical strided kernels vs generic blocklist "
              "engine\n\n");

  std::printf("2-D object, 4 MiB total, device memory:\n");
  std::printf("%10s | %12s %14s | %12s %14s\n", "block", "strided(us)",
              "metadata(B)", "blocklist(us)", "metadata(B)");
  for (const long long block : {8LL, 64LL, 512LL}) {
    const long long total = 4 * 1024 * 1024;
    MPI_Datatype t = bench::make_vector_2d(total / block, block, 2 * block);

    // Canonical path.
    tempi::StridedBlock sb;
    sb.counts = {block, total / block};
    sb.strides = {1, 2 * block};
    const tempi::Packer strided(sb, 2 * total, total);
    // Blocklist path for the identical object.
    auto bl = tempi::BlockListPacker::create(t, interpose::system_table());

    void *obj = nullptr, *flat = nullptr;
    vcuda::Malloc(&obj, static_cast<std::size_t>(total) * 2);
    vcuda::Malloc(&flat, static_cast<std::size_t>(total));

    support::Sampler s_str, s_bl;
    for (int i = 0; i < 5; ++i) {
      vcuda::VirtualNs t0 = vcuda::virtual_now();
      strided.pack(flat, obj, 1, vcuda::default_stream());
      s_str.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
      t0 = vcuda::virtual_now();
      bl->pack(flat, obj, 1, vcuda::default_stream());
      s_bl.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
    }
    std::printf("%9lldB | %12.1f %14d | %12.1f %14zu\n", block,
                s_str.trimean(), 0, s_bl.trimean(), bl->metadata_bytes());
    vcuda::Free(flat);
    vcuda::Free(obj);
    MPI_Type_free(&t);
  }

  std::printf("\nIrregular (indexed) type, 64 Ki blocks of 4 B — only the "
              "blocklist engine or the baseline applies:\n");
  {
    constexpr int kBlocks = 64 * 1024;
    std::vector<int> blens(kBlocks, 1), displs(kBlocks);
    for (int i = 0; i < kBlocks; ++i) {
      displs[static_cast<std::size_t>(i)] = 2 * i;
    }
    MPI_Datatype t = nullptr;
    MPI_Type_indexed(kBlocks, blens.data(), displs.data(), MPI_INT, &t);
    MPI_Type_commit(&t);
    auto bl = tempi::BlockListPacker::create(t, interpose::system_table());

    void *obj = nullptr, *flat = nullptr;
    vcuda::Malloc(&obj, static_cast<std::size_t>(kBlocks) * 8);
    vcuda::Malloc(&flat, static_cast<std::size_t>(kBlocks) * 4);

    vcuda::VirtualNs t0 = vcuda::virtual_now();
    bl->pack(flat, obj, 1, vcuda::default_stream());
    const double bl_us = vcuda::ns_to_us(vcuda::virtual_now() - t0);

    int position = 0;
    t0 = vcuda::virtual_now();
    MPI_Pack(obj, 1, t, flat, kBlocks * 4, &position, MPI_COMM_WORLD);
    const double base_us = vcuda::ns_to_us(vcuda::virtual_now() - t0);

    std::printf("  baseline per-block loop: %12.1f us\n", base_us);
    std::printf("  blocklist kernel:        %12.1f us  (%.0fx, %zu B device "
                "metadata = %.0f%% of the data)\n",
                bl_us, base_us / bl_us, bl->metadata_bytes(),
                100.0 * static_cast<double>(bl->metadata_bytes()) /
                    static_cast<double>(kBlocks * 4));
    bench::emit_json("abl_blocklist",
                     "indexed 64Ki x 4B blocks, blocklist kernel vs "
                     "baseline per-block loop",
                     base_us / bl_us);
    vcuda::Free(flat);
    vcuda::Free(obj);
    MPI_Type_free(&t);
  }
  return 0;
}
