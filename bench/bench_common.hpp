// Shared helpers for the figure/table reproduction benches.
//
// All latencies are *virtual* microseconds from the calibrated cost model
// (see DESIGN.md §2): the shapes are the reproduction target, not wall
// time. Phases that are pure host work (type creation/commit, Fig. 7) use
// wall time instead, since the virtual clock does not model host compute.
#pragma once

#include "support/stats.hpp"
#include "sysmpi/mpi.hpp"
#include "sysmpi/world.hpp"
#include "tempi/perf_model.hpp"
#include "tempi/tempi.hpp"
#include "tempi/trace.hpp"
#include "vcuda/runtime.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <string_view>

namespace bench {

/// CI smoke mode (TEMPI_BENCH_SMOKE=1): every bench shrinks to one rep at
/// tiny sizes so `ctest` exercises it end-to-end without real sweep cost;
/// numbers printed under smoke are not the reproduction target.
inline bool smoke_mode() {
  const char *env = std::getenv("TEMPI_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

/// A committed 2-D strided datatype over MPI_BYTE: `blocks` runs of
/// `block_bytes`, `pitch_bytes` apart.
inline MPI_Datatype make_vector_2d(long long blocks, long long block_bytes,
                                   long long pitch_bytes) {
  MPI_Datatype t = nullptr;
  MPI_Type_vector(static_cast<int>(blocks), static_cast<int>(block_bytes),
                  static_cast<int>(pitch_bytes), MPI_BYTE, &t);
  MPI_Type_commit(&t);
  return t;
}

/// Same object described as a 2-D subarray over MPI_BYTE.
inline MPI_Datatype make_subarray_2d(long long blocks, long long block_bytes,
                                     long long pitch_bytes) {
  const int sizes[2] = {static_cast<int>(blocks),
                        static_cast<int>(pitch_bytes)};
  const int subsizes[2] = {static_cast<int>(blocks),
                           static_cast<int>(block_bytes)};
  const int starts[2] = {0, 0};
  MPI_Datatype t = nullptr;
  MPI_Type_create_subarray(2, sizes, subsizes, starts, MPI_ORDER_C, MPI_BYTE,
                           &t);
  MPI_Type_commit(&t);
  return t;
}

/// Virtual-time MPI_Pack latency (us) of `count` objects of `t` on device
/// buffers, trimean of `iters` (first iteration discarded as warm-up).
inline double pack_latency_us(MPI_Datatype t, int count, int iters = 5) {
  sysmpi::ensure_self_context();
  MPI_Aint lb = 0, extent = 0;
  MPI_Type_get_extent(t, &lb, &extent);
  int size = 0;
  MPI_Type_size(t, &size);

  void *src = nullptr, *dst = nullptr;
  vcuda::Malloc(&src, static_cast<std::size_t>(extent) * count + 64);
  vcuda::Malloc(&dst, static_cast<std::size_t>(size) * count);

  support::Sampler sampler;
  for (int i = 0; i <= iters; ++i) {
    int position = 0;
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    MPI_Pack(src, count, t, dst, size * count, &position, MPI_COMM_WORLD);
    if (i > 0) {
      sampler.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
    }
  }
  vcuda::Free(src);
  vcuda::Free(dst);
  return sampler.trimean();
}

/// Receiver-side Send/Recv latency (virtual us) for a 2-D device object,
/// with one warm-up round, two ranks on distinct virtual nodes.
inline double send_latency_us(tempi::SendMode mode, long long blocks,
                              long long block_bytes, long long pitch_bytes,
                              int rounds = 3) {
  tempi::set_send_mode(mode);
  double result = 0.0;
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = make_vector_2d(blocks, block_bytes, pitch_bytes);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    void *buf = nullptr;
    vcuda::Malloc(&buf, static_cast<std::size_t>(extent) + 64);
    support::Sampler sampler;
    for (int round = 0; round <= rounds; ++round) {
      if (rank == 0) {
        MPI_Send(buf, 1, t, 1, round, MPI_COMM_WORLD);
        int ack = 0;
        MPI_Recv(&ack, 1, MPI_INT, 1, 999, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
      } else {
        const vcuda::VirtualNs t0 = vcuda::virtual_now();
        MPI_Recv(buf, 1, t, 0, round, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        if (round > 0) { // discard the cache-cold warm-up round
          sampler.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
        }
        const int ack = 1;
        MPI_Send(&ack, 1, MPI_INT, 0, 999, MPI_COMM_WORLD);
      }
    }
    if (rank == 1) {
      result = sampler.trimean();
    }
    vcuda::Free(buf);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::set_send_mode(tempi::SendMode::Auto);
  return result;
}

/// Where the BENCH_*.json sidecars land: TEMPI_BENCH_OUT overrides, else
/// the repo's bench/results/ directory baked in at configure time, else
/// the working directory.
inline std::string results_dir() {
  if (const char *env = std::getenv("TEMPI_BENCH_OUT");
      env != nullptr && env[0] != '\0') {
    return env;
  }
#ifdef TEMPI_BENCH_RESULTS_DIR
  return TEMPI_BENCH_RESULTS_DIR;
#else
  return ".";
#endif
}

/// Machine-readable result sidecar: each bench writes BENCH_<name>.json
/// (name, config, headline geomean speedup, smoke flag) into a stable
/// results directory (see results_dir()) alongside its stdout report, so
/// the perf trajectory is tracked across PRs instead of living only in CI
/// logs. When tracing is armed, a "phases" object adds the per-phase
/// pack/wire/unpack breakdown (span count + trimean) from the tracer.
/// Call once, at the end, with the bench's headline ratio. `extra`, when
/// non-empty, is spliced in verbatim as one additional top-level member
/// (a `"key": {...}` fragment without the trailing comma) for bench-
/// specific blocks like fig14's "schedule" or fig16's "reorder".
inline void emit_json(const std::string &name, const std::string &config,
                      double geomean_speedup, const std::string &extra = "") {
  std::string dir = results_dir();
  if (dir != ".") {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      dir = "."; // unwritable target: fall back to the working directory
    }
  }
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::FILE *f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: could not write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"name\": \"%s\",\n"
               "  \"config\": \"%s\",\n"
               "  \"smoke\": %s,\n"
               "  \"geomean_speedup\": %.4f,\n"
               "  \"phases\": {",
               name.c_str(), config.c_str(), smoke_mode() ? "true" : "false",
               geomean_speedup);
  const tempi::trace::Snapshot snap = tempi::trace_snapshot();
  const char *sep = "\n";
  for (std::size_t p = 0; p < tempi::trace::kPhaseCount; ++p) {
    const tempi::trace::PhaseSummary &ps = snap.phases[p];
    if (ps.count == 0) {
      continue;
    }
    std::fprintf(f,
                 "%s    \"%s\": {\"count\": %llu, \"trimean_us\": %.3f, "
                 "\"total_us\": %.3f}",
                 sep,
                 tempi::trace::phase_name(
                     static_cast<tempi::trace::Phase>(p)),
                 static_cast<unsigned long long>(ps.count), ps.trimean_us,
                 ps.total_us);
    sep = ",\n";
  }
  std::fprintf(f, "%s},\n", sep[0] == ',' ? "\n  " : "");
  if (!extra.empty()) {
    std::fprintf(f, "  %s,\n", extra.c_str());
  }
  // Self-tuning model provenance: where the calibration came from, which
  // generation the tables ended the run on, and how much the tuner saw.
  // The "locks" object carries every audited-lock contention gauge
  // (tempi.lock.*, prefix stripped) so contention regressions show up in
  // the sidecar trajectory, not only in TEMPI_STATS output.
  const tempi::tune::TunerStats tuner = tempi::tune::stats();
  std::fprintf(f,
               "  \"model\": {\"calibration\": \"%s\", \"generation\": %llu, "
               "\"observations\": %llu, \"updates\": %llu,\n"
               "    \"locks\": {",
               tempi::model_calibration_source().c_str(),
               static_cast<unsigned long long>(
                   tempi::tune::refresh_generation()),
               static_cast<unsigned long long>(tuner.observations),
               static_cast<unsigned long long>(tuner.updates));
  const char *lock_sep = "";
  for (const auto &[cname, value] : tempi::trace::counter_snapshot()) {
    constexpr std::string_view kPrefix = "tempi.lock.";
    if (std::string_view(cname).substr(0, kPrefix.size()) == kPrefix) {
      std::fprintf(f, "%s\"%s\": %llu", lock_sep,
                   cname.c_str() + kPrefix.size(),
                   static_cast<unsigned long long>(value));
      lock_sep = ", ";
    }
  }
  std::fprintf(f, "}}\n}\n");
  std::fclose(f);
}

/// Pretty-print helpers.
inline std::string human_bytes(double b) {
  char buf[32];
  if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.0fMiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.0fKiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fB", b);
  }
  return buf;
}

} // namespace bench
