// Fig. 11: MPI_Send/MPI_Recv latency for 1 KiB / 1 MiB / 4 MiB 2-D device
// objects with contiguous blocks of 1-256 B:
//   (a) absolute latency of one-shot, device, model-based auto, and the
//       system baseline;
//   (b) latency of the three TEMPI modes normalized to the slower of
//       one-shot/device, showing that auto reliably picks the faster
//       method with only the model-query overhead (~277 ns cached).
#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

int main() {
  tempi::install();

  const bool smoke = bench::smoke_mode();
  const std::vector<long long> objects =
      smoke ? std::vector<long long>{1024}
            : std::vector<long long>{1024, 1024 * 1024, 4 * 1024 * 1024};
  const std::vector<long long> blocks =
      smoke ? std::vector<long long>{1, 16, 256}
            : std::vector<long long>{1, 2, 4, 8, 16, 32, 64, 128, 256};

  std::printf("Fig. 11a — Send/Recv latency (virtual us), device-resident "
              "2-D objects, pitch = 2x block\n\n");
  std::printf("%8s %7s | %12s %12s %12s %14s %9s\n", "object", "block",
              "one-shot", "device", "auto", "baseline", "speedup");

  struct Row {
    long long object, block;
    double oneshot, device, autosel, baseline;
  };
  std::vector<Row> rows;

  for (const long long object : objects) {
    for (const long long block : blocks) {
      const long long nblocks = object / block;
      Row r{object, block, 0, 0, 0, 0};
      const int rounds = smoke ? 1 : 3;
      r.oneshot = bench::send_latency_us(tempi::SendMode::ForceOneShot,
                                         nblocks, block, 2 * block, rounds);
      r.device = bench::send_latency_us(tempi::SendMode::ForceDevice,
                                        nblocks, block, 2 * block, rounds);
      r.autosel = bench::send_latency_us(tempi::SendMode::Auto, nblocks,
                                         block, 2 * block, rounds);
      // The baseline walks every contiguous block through the driver; one
      // round is plenty (deterministic virtual time, and 4M-block objects
      // are seconds of virtual latency per round).
      r.baseline = bench::send_latency_us(tempi::SendMode::System, nblocks,
                                          block, 2 * block, /*rounds=*/1);
      rows.push_back(r);
      std::printf("%8s %6lldB | %12.1f %12.1f %12.1f %14.1f %8.0fx\n",
                  bench::human_bytes(static_cast<double>(object)).c_str(),
                  block, r.oneshot, r.device, r.autosel, r.baseline,
                  r.baseline / r.autosel);
    }
  }

  std::printf("\nFig. 11b — normalized latency (1.0 = slower of one-shot/"
              "device)\n\n");
  std::printf("%8s %7s | %9s %9s %9s   %s\n", "object", "block", "one-shot",
              "device", "auto", "auto==min?");
  int correct = 0;
  for (const Row &r : rows) {
    const double worst = std::max(r.oneshot, r.device);
    const double best = std::min(r.oneshot, r.device);
    const bool ok = r.autosel <= best * 1.05 + 1.0;
    correct += ok ? 1 : 0;
    std::printf("%8s %6lldB | %9.3f %9.3f %9.3f   %s\n",
                bench::human_bytes(static_cast<double>(r.object)).c_str(),
                r.block, r.oneshot / worst, r.device / worst,
                r.autosel / worst, ok ? "yes" : "NO");
  }
  std::printf("\nauto tracked the faster method in %d/%zu configurations "
              "(paper: reliably, with ~277 ns model overhead).\n", correct,
              rows.size());
  std::printf("Paper headline: up to 59,000x vs baseline for large objects "
              "with small blocks.\n");

  std::vector<double> speedups;
  for (const Row &r : rows) {
    speedups.push_back(r.baseline / r.autosel);
  }
  bench::emit_json("fig11_send",
                   "auto Send/Recv vs system baseline across the Fig. 11 "
                   "object/block sweep",
                   support::geomean(speedups));
  tempi::uninstall();
  return 0;
}
