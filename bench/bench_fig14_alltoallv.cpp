// Fig. 14 (extension): the datatype-aware collectives engine vs the
// system MPI baseline for device-resident MPI_Alltoallv over a
// peer-count x fragment-size sweep.
//
// Each rank ships `objs` strided objects to every peer (an all-to-all of
// strided tiles, the distributed transpose/correlation pattern). The
// system baseline packs every per-peer message with the per-block
// datatype loop at send time and unpacks it the same way at receive
// time; the engine packs ALL peers' blocks with one fused span-kernel
// pass, fans the per-peer legs through the request engine (method per
// leg from the netmodel-aware choose_leg), and scatters the received
// staging with one more kernel pass.
//
// Pass gate: in the fragmented regime (blocks <= 16 B) at >= 8 ranks the
// engine must clear 2x over the baseline (ISSUE 4 acceptance); the
// geomean over the gated configurations is reported alongside.
#include "bench_common.hpp"
#include "tempi/collectives.hpp"
#include "tempi/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace {

/// Max-across-ranks virtual latency (us) of one MPI_Alltoallv with
/// `objs` objects of a (blocks x block_bytes, pitch) vector type per
/// peer, device buffers, two ranks per virtual node.
double alltoallv_us(bool engine, int ranks, long long blocks,
                    long long block_bytes, int objs, int rounds) {
  tempi::coll::set_enabled(engine);
  std::vector<double> per_rank(static_cast<std::size_t>(ranks), 0.0);
  sysmpi::RunConfig cfg;
  cfg.ranks = ranks;
  cfg.ranks_per_node = 2;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = bench::make_vector_2d(blocks, block_bytes,
                                           2 * block_bytes);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    int P = 0;
    MPI_Comm_size(MPI_COMM_WORLD, &P);
    std::vector<int> counts(static_cast<std::size_t>(P), objs);
    std::vector<int> displs(static_cast<std::size_t>(P));
    for (int p = 0; p < P; ++p) {
      displs[static_cast<std::size_t>(p)] = p * objs;
    }
    const std::size_t bytes =
        static_cast<std::size_t>(P) * objs * extent + 64;
    void *sbuf = nullptr, *rbuf = nullptr;
    vcuda::Malloc(&sbuf, bytes);
    vcuda::Malloc(&rbuf, bytes);
    support::Sampler sampler;
    for (int round = 0; round <= rounds; ++round) {
      const vcuda::VirtualNs t0 = vcuda::virtual_now();
      MPI_Alltoallv(sbuf, counts.data(), displs.data(), t, rbuf,
                    counts.data(), displs.data(), t, MPI_COMM_WORLD);
      if (round > 0) { // discard the cache-cold warm-up round
        sampler.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
      }
    }
    per_rank[static_cast<std::size_t>(rank)] = sampler.trimean();
    vcuda::Free(sbuf);
    vcuda::Free(rbuf);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::coll::set_enabled(true);
  return *std::max_element(per_rank.begin(), per_rank.end());
}

} // namespace

int main() {
  tempi::install();
  const bool smoke = bench::smoke_mode();

  const std::vector<int> rank_counts = {4, 8};
  const std::vector<long long> block_sizes = {8, 64, 512};
  const long long blocks = smoke ? 64 : 2048; // rows per object
  const int objs = smoke ? 1 : 2;             // objects per peer
  const int rounds = smoke ? 1 : 3;

  std::printf("Fig. 14 — MPI_Alltoallv of strided tiles (virtual us, max "
              "across ranks): system baseline vs collectives engine\n");
  std::printf("%d rows x block per object, %d object(s) per peer, 2 ranks "
              "per node\n\n",
              static_cast<int>(blocks), objs);
  std::printf("%6s %7s %10s | %12s %12s | %8s\n", "ranks", "block",
              "per-peer", "baseline", "engine", "speedup");

  int gated = 0, gated_ok = 0;
  std::vector<double> gated_speedups;
  for (const int ranks : rank_counts) {
    for (const long long block : block_sizes) {
      const double base =
          alltoallv_us(false, ranks, blocks, block, objs, rounds);
      const double eng =
          alltoallv_us(true, ranks, blocks, block, objs, rounds);
      const double speedup = base / eng;
      // Gate: fragmented per-peer blocks at >= 8 ranks must clear 2x.
      const bool in_gate = ranks >= 8 && block <= 16;
      if (in_gate) {
        ++gated;
        gated_ok += speedup >= 2.0 ? 1 : 0;
        gated_speedups.push_back(speedup);
      }
      std::printf("%6d %6lldB %10s | %12.1f %12.1f | %7.2fx%s\n", ranks,
                  block,
                  bench::human_bytes(static_cast<double>(blocks) * block *
                                     objs)
                      .c_str(),
                  base, eng, speedup, in_gate ? "  <- gate" : "");
    }
  }
  if (!gated_speedups.empty()) {
    std::printf("\nengine >= 2x over the system baseline in %d/%d gated "
                "configurations (>= 8 ranks, <= 16 B blocks); geomean "
                "%.2fx.\n",
                gated_ok, gated, support::geomean(gated_speedups));
  }

  // Oversized per-peer legs: with the wire-chunk limit injected down, the
  // same exchange ships each leg as ordered PR 3 sub-slice legs instead
  // of failing at the 2 GiB ceiling.
  const std::size_t inject = smoke ? 16 * 1024 : 256 * 1024;
  const std::size_t old_limit = tempi::set_wire_chunk_limit(inject);
  tempi::reset_send_stats();
  const double over_us = alltoallv_us(true, 4, blocks, 512, objs, rounds);
  const tempi::SendStats stats = tempi::send_stats();
  tempi::set_wire_chunk_limit(old_limit);
  std::printf("\nwith the wire-chunk limit injected to %s, the 4-rank "
              "512 B-block exchange completed in %.1f us across %llu wire "
              "legs (%llu bytes over the single-leg ceiling).\n",
              bench::human_bytes(static_cast<double>(inject)).c_str(),
              over_us,
              static_cast<unsigned long long>(stats.pipeline_chunks),
              static_cast<unsigned long long>(
                  stats.pipeline_over_ceiling_bytes));

  // Scheduling sidecar: run the most fragmented gated configuration once
  // per issue policy and record how many legs moved off rank order. The
  // rank-order run must report zero staggered legs (identity schedule);
  // the node-aware run staggers every inter-node leg of the fan-out.
  const bool topo_was = tempi::topo::enabled();
  tempi::topo::set_enabled(false);
  tempi::reset_send_stats();
  alltoallv_us(true, 8, blocks, 8, objs, 1);
  const tempi::SendStats rank_order = tempi::send_stats();
  tempi::topo::set_enabled(true);
  tempi::reset_send_stats();
  alltoallv_us(true, 8, blocks, 8, objs, 1);
  const tempi::SendStats node_aware = tempi::send_stats();
  tempi::topo::set_enabled(topo_was);
  std::printf("\nissue order (8 ranks, 8 B blocks): %llu peer legs; "
              "rank order staggered %llu, node aware staggered %llu "
              "(%llu stayed on-node).\n",
              static_cast<unsigned long long>(node_aware.coll_peer_legs),
              static_cast<unsigned long long>(rank_order.topo_staggered_legs),
              static_cast<unsigned long long>(node_aware.topo_staggered_legs),
              static_cast<unsigned long long>(
                  node_aware.topo_intra_node_legs));
  char sched[224];
  std::snprintf(sched, sizeof sched,
                "\"schedule\": {\"peer_legs\": %llu, "
                "\"rank_order_staggered_legs\": %llu, "
                "\"node_aware_staggered_legs\": %llu, "
                "\"node_aware_intra_node_legs\": %llu}",
                static_cast<unsigned long long>(node_aware.coll_peer_legs),
                static_cast<unsigned long long>(
                    rank_order.topo_staggered_legs),
                static_cast<unsigned long long>(
                    node_aware.topo_staggered_legs),
                static_cast<unsigned long long>(
                    node_aware.topo_intra_node_legs));

  if (!gated_speedups.empty()) {
    bench::emit_json("fig14_alltoallv",
                     "collectives engine vs system Alltoallv, gated "
                     "configurations (>= 8 ranks, <= 16 B blocks)",
                     support::geomean(gated_speedups), sched);
  }
  tempi::uninstall();
  return gated_ok == gated ? 0 : 1;
}
