// Ablation: what canonicalization (Sec. 3.2) buys.
//
// Deeply nested constructions of the same object translate to deep IR
// chains. Without simplification, the StridedBlock inherits one dimension
// per IR level — including singleton dimensions and a tiny contiguous
// innermost block (the named type's 4 bytes) — so the selected kernel does
// 4-byte gathers. Canonicalization folds the chain to the true
// 3-dimensional structure with a 400-byte dense row.
#include "bench_common.hpp"
#include "interpose/table.hpp"
#include "tempi/canonicalize.hpp"
#include "tempi/packer.hpp"
#include "tempi/translate.hpp"

#include <cstdio>

namespace {

constexpr int kA0 = 512, kA1 = 512, kA2 = 64;
constexpr int kE0 = 100, kE1 = 13, kE2 = 47;

MPI_Datatype deep_construction() {
  MPI_Datatype row = nullptr, plane = nullptr, cuboid = nullptr;
  MPI_Type_vector(1, kE0, 1, MPI_FLOAT, &row);
  MPI_Type_create_hvector(kE1, 1, kA0, row, &plane);
  MPI_Type_create_hvector(kE2, 1, static_cast<MPI_Aint>(kA0) * kA1, plane,
                          &cuboid);
  MPI_Type_free(&plane);
  MPI_Type_free(&row);
  MPI_Type_commit(&cuboid);
  return cuboid;
}

double pack_us(const tempi::Packer &packer) {
  void *src = nullptr, *dst = nullptr;
  vcuda::Malloc(&src, static_cast<std::size_t>(kA0) * kA1 * kA2);
  vcuda::Malloc(&dst, packer.packed_bytes(1));
  support::Sampler s;
  for (int i = 0; i < 5; ++i) {
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    packer.pack(dst, src, 1, vcuda::default_stream());
    s.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
  }
  vcuda::Free(dst);
  vcuda::Free(src);
  return s.trimean();
}

void report(const char *label, const tempi::Type &ir) {
  const auto sb = tempi::to_strided_block(ir);
  if (!sb) {
    std::printf("%-22s IR depth %zu -> not strided-block convertible "
                "(falls back to baseline)\n", label, ir.depth());
    return;
  }
  MPI_Aint extent = static_cast<MPI_Aint>(kA0) * kA1 * kA2;
  const tempi::Packer packer(*sb, extent, sb->size());
  std::printf("%-22s IR depth %zu, %d dims, block %lld B, W=%d -> pack "
              "%8.1f us\n", label, ir.depth(), sb->ndims(),
              sb->block_bytes(), packer.word_size(), pack_us(packer));
}

} // namespace

int main() {
  sysmpi::ensure_self_context();
  std::printf("Ablation — canonicalization passes (hv(hv(vec)) "
              "construction of a %dx%dx%d-float object)\n\n", kE0, kE1,
              kE2);

  MPI_Datatype t = deep_construction();
  const auto raw = tempi::translate(t, interpose::system_table());
  if (!raw) {
    std::printf("translation failed\n");
    return 1;
  }

  report("no canonicalization", *raw);

  tempi::Type folded = *raw;
  tempi::dense_folding(folded);
  report("+ dense folding", folded);

  tempi::Type elided = folded;
  tempi::stream_elision(elided);
  report("+ stream elision", elided);

  tempi::Type flat = elided;
  tempi::stream_flatten(flat);
  tempi::sort_streams(flat);
  report("+ flatten & sort", flat);

  tempi::Type full = *raw;
  tempi::simplify(full);
  report("full fixed-point", full);

  // Headline: raw IR pack latency over canonicalized pack latency.
  double raw_us = 0.0, canon_us = 0.0;
  const MPI_Aint extent = static_cast<MPI_Aint>(kA0) * kA1 * kA2;
  if (const auto sb = tempi::to_strided_block(*raw)) {
    raw_us = pack_us(tempi::Packer(*sb, extent, sb->size()));
  }
  if (const auto sb = tempi::to_strided_block(full)) {
    canon_us = pack_us(tempi::Packer(*sb, extent, sb->size()));
  }
  if (raw_us > 0.0 && canon_us > 0.0) {
    bench::emit_json("abl_canonical",
                     "hv(hv(vec)) deep construction, canonicalized pack vs "
                     "raw-IR pack",
                     raw_us / canon_us);
  }

  MPI_Type_free(&t);
  std::printf("\nThe canonical form exposes the 400 B dense rows; the raw "
              "IR packs 4 B words at ~1/32 the effective bandwidth.\n");
  return 0;
}
