// Ablation: the Sec. 5 caching layer.
//
//   (1) intermediate-buffer cache: with it, repeated Sends lease device /
//       pinned intermediates in ~100 ns (virtual); without it, every Send
//       pays the full cudaMalloc/cudaMallocHost cost on the critical path;
//   (2) performance-model query cache: cached selections cost ~277 ns vs
//       ~2 us for a fresh interpolation (Sec. 6.3).
#include "bench_common.hpp"
#include "tempi/buffer_cache.hpp"
#include "tempi/perf_model.hpp"

#include <cstdio>

namespace {

double send_us(bool cache_enabled) {
  tempi::set_send_mode(tempi::SendMode::ForceDevice);
  double us = 0.0;
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    tempi::set_buffer_cache_enabled(cache_enabled);
    MPI_Datatype t = bench::make_vector_2d(1024, 16, 32);
    void *buf = nullptr;
    vcuda::Malloc(&buf, 1024 * 32 + 64);
    support::Sampler s;
    for (int round = 0; round < 4; ++round) {
      if (rank == 0) {
        MPI_Send(buf, 1, t, 1, round, MPI_COMM_WORLD);
        int ack = 0;
        MPI_Recv(&ack, 1, MPI_INT, 1, 99, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
      } else {
        const vcuda::VirtualNs t0 = vcuda::virtual_now();
        MPI_Recv(buf, 1, t, 0, round, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        if (round > 0) {
          s.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
        }
        const int ack = 1;
        MPI_Send(&ack, 1, MPI_INT, 0, 99, MPI_COMM_WORLD);
      }
    }
    if (rank == 1) {
      us = s.trimean();
    }
    vcuda::Free(buf);
    MPI_Type_free(&t);
    tempi::set_buffer_cache_enabled(true);
    MPI_Finalize();
  });
  tempi::set_send_mode(tempi::SendMode::Auto);
  return us;
}

} // namespace

int main() {
  tempi::install();

  std::printf("Ablation — resource caching (Sec. 5)\n\n");
  const double with_cache = send_us(true);
  const double without_cache = send_us(false);
  std::printf("steady-state Send/Recv latency, 16 KiB strided object:\n");
  std::printf("  buffer cache ON:  %8.1f us\n", with_cache);
  std::printf("  buffer cache OFF: %8.1f us  (every Send pays "
              "cudaMalloc)\n", without_cache);
  std::printf("  caching saves %.1fx\n\n", without_cache / with_cache);

  const tempi::PerfModel model;
  const vcuda::VirtualNs t0 = vcuda::virtual_now();
  (void)model.choose(48, 987654);
  const vcuda::VirtualNs miss = vcuda::virtual_now() - t0;
  support::Sampler hits;
  for (int i = 0; i < 10; ++i) {
    const vcuda::VirtualNs h0 = vcuda::virtual_now();
    (void)model.choose(48, 987654);
    hits.add(static_cast<double>(vcuda::virtual_now() - h0));
  }
  std::printf("model query: first (interpolating) %llu ns, cached %.0f ns "
              "(paper: 277 ns added per selection)\n",
              static_cast<unsigned long long>(miss), hits.trimean());

  bench::emit_json("abl_cache",
                   "16KiB strided Send/Recv, buffer cache on vs off",
                   without_cache / with_cache);
  tempi::uninstall();
  return 0;
}
