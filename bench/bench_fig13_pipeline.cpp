// Fig. 13 (extension): the Pipelined chunked method vs the monolithic
// methods, sweeping message size x chunk size for device-resident 2-D
// objects.
//
//   (a) modeled latency of the best monolithic method vs Pipelined with
//       the model-chosen chunk, across message sizes and block sizes —
//       the fragmented regime (small blocks) is where pack/unpack
//       bandwidth is comparable to the wire, so overlapping them hides
//       real time (acceptance: >= 1.3x at >= 64 MiB);
//   (b) a chunk-size sweep at one large message, showing the sweet spot
//       between per-leg latency floors (tiny chunks) and lost overlap
//       (whole-message chunks);
//   (c) measured virtual-time ping-pong latency for one large fragmented
//       message, monolithic vs pipelined, plus the >2 GiB-equivalent
//       multi-leg path exercised through an injected wire-chunk limit;
//   (d) the closed tuning loop: the measured runs above (plus a short
//       per-block warm-up sweep) feed the observation sink, the tables
//       are refreshed, and the (a) sweep re-runs on the tuned model.
//       The tuned geomean is the primary sidecar; the cold pass lands in
//       BENCH_fig13_pipeline_cold.json for comparison. The per-leg pack
//       observations record the *residual* pack cost left after wire
//       overlap, which is what the analytic chunk model overestimates —
//       recovering the paper's 1.4-2.1x fragmented-regime band.
#include "bench_common.hpp"
#include "tempi/methods.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace {

double best_monolithic_us(const tempi::PerfModel &model, double block,
                          double total, tempi::Method *which = nullptr) {
  double best = 1e300;
  for (const tempi::Method m :
       {tempi::Method::OneShot, tempi::Method::Device,
        tempi::Method::Staged}) {
    const double us = model.estimate_us(m, block, total);
    if (us < best) {
      best = us;
      if (which != nullptr) {
        *which = m;
      }
    }
  }
  return best;
}

struct SweepResult {
  std::vector<double> speedups;
  int big_fragmented = 0;
  int big_fragmented_ok = 0;
};

/// The Fig. 13a message x block sweep against one model snapshot.
SweepResult run_sweep(const tempi::PerfModel &model,
                      const std::vector<double> &totals,
                      const std::vector<double> &blocks) {
  SweepResult r;
  std::printf("%8s %7s | %12s %8s | %12s %10s | %8s\n", "message", "block",
              "monolithic", "method", "pipelined", "chunk", "speedup");
  for (const double total : totals) {
    for (const double block : blocks) {
      tempi::Method mono_m = tempi::Method::Device;
      const double mono = best_monolithic_us(model, block, total, &mono_m);
      const auto best = model.best_pipelined(block, total);
      const double chunk = static_cast<double>(best.chunk_bytes);
      const double pipe = best.us;
      const double speedup = mono / pipe;
      // Pass/fail gate: the fragmented regime (blocks <= 8 B, where
      // pack/unpack bandwidth rivals the wire) at >= 64 MiB must clear
      // 1.3x; 16 B blocks hover just under (~1.3x) and are reported only.
      if (total >= 64.0 * 1024 * 1024 && block <= 8) {
        ++r.big_fragmented;
        r.big_fragmented_ok += speedup >= 1.3 ? 1 : 0;
      }
      r.speedups.push_back(speedup);
      std::printf("%8s %6.0fB | %12.1f %8s | %12.1f %10s | %7.2fx\n",
                  bench::human_bytes(total).c_str(), block, mono,
                  tempi::method_name(mono_m), pipe,
                  bench::human_bytes(chunk).c_str(), speedup);
    }
  }
  return r;
}

} // namespace

int main() {
  tempi::install();
  const bool smoke = bench::smoke_mode();
  // Cold snapshot: whatever install() bootstrapped (built-in calibration
  // or TEMPI_PERF_FILE), before any observation folds in.
  const tempi::PerfModel cold_model = tempi::perf_model();

  // --- (a) modeled: message size x block size, model-chosen chunk ------------
  const std::vector<double> totals =
      smoke ? std::vector<double>{1.0 * 1024 * 1024}
            : std::vector<double>{16.0 * 1024 * 1024, 64.0 * 1024 * 1024,
                                  256.0 * 1024 * 1024, 1024.0 * 1024 * 1024};
  const std::vector<double> blocks = {4, 8, 16, 32, 64, 256};

  std::printf("Fig. 13a — modeled Send/Recv latency (virtual us): best "
              "monolithic vs pipelined (model-chosen chunk), cold model\n\n");
  const SweepResult cold = run_sweep(cold_model, totals, blocks);
  const double cold_geo = support::geomean(cold.speedups);
  std::printf("\npipelined >= 1.3x over the best monolithic method in %d/%d "
              "large fragmented configurations (>= 64 MiB, <= 8 B blocks), "
              "cold geomean %.4fx.\n",
              cold.big_fragmented_ok, cold.big_fragmented, cold_geo);
  bench::emit_json("fig13_pipeline_cold",
                   "modeled pipelined vs best monolithic across the "
                   "message x block sweep, before tuning",
                   cold_geo);

  // --- (b) modeled: chunk-size sweep at one large message -------------------
  const double sweep_total =
      smoke ? 1.0 * 1024 * 1024 : 256.0 * 1024 * 1024;
  const double sweep_block = 8;
  std::printf("\nFig. 13b — chunk sweep, %s message, %.0f B blocks "
              "(modeled)\n\n",
              bench::human_bytes(sweep_total).c_str(), sweep_block);
  std::printf("%10s | %12s | %8s\n", "chunk", "pipelined us", "speedup");
  const double sweep_mono = best_monolithic_us(cold_model, sweep_block,
                                               sweep_total);
  for (double chunk = 64.0 * 1024; chunk <= sweep_total; chunk *= 4.0) {
    const double pipe =
        cold_model.estimate_pipelined_us(sweep_block, sweep_total, chunk);
    std::printf("%10s | %12.1f | %7.2fx\n",
                bench::human_bytes(chunk).c_str(), pipe, sweep_mono / pipe);
  }

  // --- (c) measured virtual time: monolithic vs pipelined ping-pong ----------
  // A fragmented 2-D object (8 B blocks): pack/unpack are wire-comparable,
  // so the pipeline's overlap shows up in end-to-end virtual latency.
  // These runs double as the first tuning observations.
  const long long meas_block = 8;
  const long long meas_blocks =
      (smoke ? (1LL << 20) : (64LL << 20)) / meas_block;
  const int rounds = smoke ? 1 : 2;
  std::printf("\nFig. 13c — measured ping-pong latency (virtual us), "
              "%s message, 8 B blocks\n\n",
              bench::human_bytes(static_cast<double>(meas_block) *
                                 static_cast<double>(meas_blocks))
                  .c_str());
  const double dev_us =
      bench::send_latency_us(tempi::SendMode::ForceDevice, meas_blocks,
                             meas_block, 2 * meas_block, rounds);
  const double pipe_us =
      bench::send_latency_us(tempi::SendMode::ForcePipelined, meas_blocks,
                             meas_block, 2 * meas_block, rounds);
  const double auto_us =
      bench::send_latency_us(tempi::SendMode::Auto, meas_blocks, meas_block,
                             2 * meas_block, rounds);
  std::printf("%12s %12s %12s | %s\n", "device", "pipelined", "auto",
              "device/pipelined");
  std::printf("%12.1f %12.1f %12.1f | %15.2fx\n", dev_us, pipe_us, auto_us,
              dev_us / pipe_us);

  // The multi-leg >limit path, scaled down via the injectable wire-chunk
  // limit so CI exercises the 2 GiB-ceiling machinery without gigabytes.
  const std::size_t old_limit =
      tempi::set_wire_chunk_limit(smoke ? 64 * 1024 : 4 * 1024 * 1024);
  tempi::reset_send_stats();
  const double over_us =
      bench::send_latency_us(tempi::SendMode::Auto, meas_blocks, meas_block,
                             2 * meas_block, rounds);
  const tempi::SendStats stats = tempi::send_stats();
  tempi::set_wire_chunk_limit(old_limit);
  std::printf("\nwith the wire-chunk limit injected to %s, the same message "
              "(over the limit) completed in %.1f us across %llu wire legs "
              "(%llu bytes over the old single-leg ceiling; monolithic "
              "methods would return MPI_ERR_COUNT).\n",
              bench::human_bytes(smoke ? 64.0 * 1024 : 4.0 * 1024 * 1024)
                  .c_str(),
              over_us,
              static_cast<unsigned long long>(stats.pipeline_chunks),
              static_cast<unsigned long long>(
                  stats.pipeline_over_ceiling_bytes));

  // --- (d) close the loop: warm up each block row, refresh, re-sweep ---------
  // Each block size in the (a) sweep gets pipelined legs at a few chunk
  // sizes (so its residual-pack knots get samples) plus one monolithic
  // run; then the tables fold the observations in and (a) re-runs tuned.
  const std::vector<std::size_t> warm_chunks =
      smoke ? std::vector<std::size_t>{128 * 1024, 256 * 1024, 512 * 1024}
            : std::vector<std::size_t>{256 * 1024, 1024 * 1024,
                                       4 * 1024 * 1024};
  const long long warm_total = smoke ? (1LL << 20) : (64LL << 20);
  for (const double block : blocks) {
    const long long bb = static_cast<long long>(block);
    const long long nblocks = warm_total / bb;
    for (const std::size_t chunk : warm_chunks) {
      tempi::set_chunk_bytes_override(chunk);
      bench::send_latency_us(tempi::SendMode::ForcePipelined, nblocks, bb,
                             2 * bb, 1);
    }
    tempi::set_chunk_bytes_override(0);
    bench::send_latency_us(tempi::SendMode::ForceDevice, nblocks, bb, 2 * bb,
                           1);
  }
  const tempi::tune::TunerStats tuner = tempi::tune::stats();
  tempi::tune::refresh_now();
  const tempi::PerfModel &tuned_model = tempi::perf_model();

  std::printf("\nFig. 13d — the same sweep after tuning (%llu observations, "
              "%llu knot updates folded in)\n\n",
              static_cast<unsigned long long>(tuner.observations),
              static_cast<unsigned long long>(tuner.updates));
  const SweepResult tuned = run_sweep(tuned_model, totals, blocks);
  const double tuned_geo = support::geomean(tuned.speedups);
  std::printf("\npipelined >= 1.3x over the best monolithic method in %d/%d "
              "large fragmented configurations (>= 64 MiB, <= 8 B blocks).\n"
              "geomean speedup: cold %.4fx -> tuned %.4fx\n",
              tuned.big_fragmented_ok, tuned.big_fragmented, cold_geo,
              tuned_geo);

  bench::emit_json("fig13_pipeline",
                   "modeled pipelined vs best monolithic across the "
                   "message x block sweep, after tuning on measured "
                   "observations",
                   tuned_geo);
  tempi::uninstall();

  // Gates: the large fragmented band must hold on the *tuned* model, and
  // tuning must strictly recover headroom over the analytic cold tables.
  // When the cold model was bootstrapped from a measurement file it is
  // already converged, so only no-regression is required there.
  const bool from_file =
      tempi::model_calibration_source().rfind("file:", 0) == 0;
  bool ok = true;
  if (tuned.big_fragmented_ok != tuned.big_fragmented) {
    std::fprintf(stderr, "FAIL: tuned large-fragmented band %d/%d\n",
                 tuned.big_fragmented_ok, tuned.big_fragmented);
    ok = false;
  }
  if (from_file ? !(tuned_geo >= 0.999 * cold_geo) : !(tuned_geo > cold_geo)) {
    std::fprintf(stderr, "FAIL: tuned geomean %.4f vs cold %.4f (%s)\n",
                 tuned_geo, cold_geo,
                 from_file ? "regressed a converged bootstrap"
                           : "no improvement over builtin calibration");
    ok = false;
  }
  if (!(tuned_geo >= 1.25)) {
    std::fprintf(stderr, "FAIL: tuned geomean %.4f below 1.25\n", tuned_geo);
    ok = false;
  }
  return ok ? 0 : 1;
}
