// Table 1: microbenchmark summary in the format of the paper's related-work
// comparison. The literature rows are reproduced verbatim from the paper
// for context; the "this work" row is measured on the virtual system.
#include "bench_common.hpp"
#include "tempi/packer.hpp"

#include <cstdio>

namespace {

/// Device-strategy pack latency of a `total`-byte object with 512 B runs
/// (the paper's pack microbenchmark shape).
double pack_us(long long total) {
  tempi::StridedBlock sb;
  const long long block = 512;
  sb.counts = {block, total / block};
  sb.strides = {1, 2 * block};
  const tempi::Packer packer(sb, 2 * total, total);
  void *obj = nullptr, *flat = nullptr;
  vcuda::Malloc(&obj, static_cast<std::size_t>(total) * 2);
  vcuda::Malloc(&flat, static_cast<std::size_t>(total));
  support::Sampler s;
  for (int i = 0; i < 5; ++i) {
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    packer.pack(flat, obj, 1, vcuda::default_stream());
    s.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
  }
  vcuda::Free(flat);
  vcuda::Free(obj);
  return s.trimean();
}

/// Non-contiguous Send/Recv latency with model-based selection, 64 B runs.
double pingpong_us(long long total) {
  tempi::install();
  const double us = bench::send_latency_us(tempi::SendMode::Auto, total / 64,
                                           64, 128);
  tempi::uninstall();
  return us;
}

} // namespace

int main() {
  sysmpi::ensure_self_context();

  std::printf("Table 1 — selected microbenchmark results (related work "
              "rows quoted from the paper)\n\n");
  std::printf("%-28s %-34s %s\n", "work / platform", "pack",
              "dist.-mem. ping-pong");
  std::printf("%-28s %-34s %s\n", "[17] C2050, QDR IB",
              "25us (1KiB), 10ms (4MiB)", "20ms (4MiB)");
  std::printf("%-28s %-34s %s\n", "[15] C2050, QDR IB", "120us (1KiB)",
              "(none provided)");
  std::printf("%-28s %-34s %s\n", "[10] C2050, QDR IB", "10us (1KiB)",
              "70us (1KiB), 700us (256KiB)");
  std::printf("%-28s %-34s %s\n", "[18] K40, FDR IB",
              "75us (512KiB), 150us (4MiB)", "7ms (4MiB)");
  std::printf("%-28s %-34s %s\n", "paper (V100, EDR IB)",
              "13us (64KiB), 21us (4MiB)",
              "60us (1KiB), 354us (1MiB), 888us (4MiB)");

  const double pack64k = pack_us(64 * 1024);
  const double pack4m = pack_us(4 * 1024 * 1024);
  const double pp1k = pingpong_us(1024);
  const double pp1m = pingpong_us(1024 * 1024);
  const double pp4m = pingpong_us(4 * 1024 * 1024);
  char packs[80], pps[96];
  std::snprintf(packs, sizeof packs, "%.0fus (64KiB), %.0fus (4MiB)",
                pack64k, pack4m);
  std::snprintf(pps, sizeof pps, "%.0fus (1KiB), %.0fus (1MiB), %.0fus "
                "(4MiB)", pp1k, pp1m, pp4m);
  std::printf("%-28s %-34s %s\n", "this repro (virtual Summit)", packs, pps);
  // Headline: the paper's 4 MiB ping-pong (888 us) over this repro's —
  // >1 means the virtual system is at least as fast as the paper's.
  bench::emit_json("table1_summary",
                   "4MiB non-contiguous ping-pong, paper latency over this "
                   "repro's",
                   888.0 / pp4m);
  return 0;
}
