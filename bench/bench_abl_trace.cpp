// Ablation + acceptance gates for the operation tracer (trace.hpp).
//
// The tracer is always compiled in, so its disabled path sits on every
// hot path in the interposer. This bench holds it to its budget and
// checks that the spans it records, when armed, actually account for the
// operations they claim to cover:
//   (1) disabled-path cost — a not-armed instrumentation point (one
//       relaxed load + a dead ScopedSpan) vs the same loop without it,
//       best-of-3, baseline-subtracted (acceptance: <= 5 ns/op);
//   (2) span coverage — a fragmented pipelined 2-rank ping-pong with an
//       injected wire-chunk limit; the receiver's Wire+Unpack span
//       durations must sum to within 20% of the receiver's measured
//       end-to-end recv time (overlap means the *sender* side would
//       double-count, so the check is receiver-side only);
//   (3) phase completeness — after the ping-pong plus one persistent
//       Send_init/Start/Wait round and a direct device memcpy, every
//       Phase has at least one recorded span;
//   (4) export — the Chrome trace JSON written to TEMPI_TRACE (or
//       bench/results/trace_smoke.json) passes a minimal structural
//       validator: balanced braces outside strings, a traceEvents array,
//       metadata ("M") and complete ("X") events, dur on every X event.
// Exit is nonzero when any gate fails; the bench_trace_smoke CTest entry
// runs this with TEMPI_TRACE pointing into bench/results/.
#include "bench_common.hpp"
#include "tempi/perf_model.hpp"
#include "tempi/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

/// Wall-clock ns/call of `fn` over `iters` calls; `fn` returns a value the
/// accumulator consumes so the loop cannot be optimized away.
template <typename Fn>
double wall_ns_per_call(int iters, Fn &&fn) {
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    sink += fn();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() +
      static_cast<double>(sink & 1);
  return ns / iters;
}

template <typename Fn>
double best_of3(Fn &&fn) {
  double best = fn();
  best = std::min(best, fn());
  return std::min(best, fn());
}

int g_failures = 0;

void gate(bool ok, const char *what) {
  if (!ok) {
    ++g_failures;
    std::printf("  FAIL: %s\n", what);
  }
}

/// Minimal Chrome trace-event structural validator: no JSON library in the
/// container, so this scans the byte stream directly. Checks brace/bracket
/// balance outside string literals, the presence of a traceEvents array,
/// at least one metadata and one complete event, and that every complete
/// event carries a dur field (counted, not parsed).
bool validate_chrome_trace(const std::string &path, std::string *why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *why = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  if (s.empty()) {
    *why = "empty file";
    return false;
  }
  long depth_brace = 0, depth_brack = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
    case '"': in_string = true; break;
    case '{': ++depth_brace; break;
    case '}': --depth_brace; break;
    case '[': ++depth_brack; break;
    case ']': --depth_brack; break;
    default: break;
    }
    if (depth_brace < 0 || depth_brack < 0) {
      *why = "unbalanced close";
      return false;
    }
  }
  if (in_string || depth_brace != 0 || depth_brack != 0) {
    *why = "unterminated string or unbalanced braces/brackets";
    return false;
  }
  const auto count = [&s](const char *needle) {
    std::size_t n = 0;
    for (std::size_t pos = s.find(needle); pos != std::string::npos;
         pos = s.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  if (s.find("\"traceEvents\"") == std::string::npos) {
    *why = "no traceEvents key";
    return false;
  }
  const std::size_t x_events = count("\"ph\":\"X\"");
  const std::size_t m_events = count("\"ph\":\"M\"");
  const std::size_t durs = count("\"dur\":");
  if (x_events == 0) {
    *why = "no complete (X) events";
    return false;
  }
  if (m_events == 0) {
    *why = "no metadata (M) events";
    return false;
  }
  if (durs < x_events) {
    *why = "X event without dur";
    return false;
  }
  return true;
}

} // namespace

int main() {
  tempi::install();
  sysmpi::ensure_self_context();
  const bool smoke = bench::smoke_mode();
  using namespace tempi::trace;

  // ---- (1) disabled-path cost ------------------------------------------
  // TEMPI_TRACE (set by the CTest entry) arms tracing at install; disarm
  // for the measurement so this gates the path every un-traced run pays.
  set_enabled(false);
  const int iters = smoke ? 1 << 16 : 1 << 21;
  const double base_ns = best_of3([&] {
    return wall_ns_per_call(iters, [] { return std::uint64_t{1}; });
  });
  const double span_ns = best_of3([&] {
    return wall_ns_per_call(iters, [] {
      ScopedSpan span(Phase::Wire, OpKind::Send, 4096, 1, 7);
      return std::uint64_t{1};
    });
  });
  const double emit_ns = best_of3([&] {
    return wall_ns_per_call(iters, [] {
      emit(Phase::Unpack, OpKind::Recv, 0, 0, 4096);
      return std::uint64_t{1};
    });
  });
  const double span_cost = std::max(0.0, span_ns - base_ns);
  const double emit_cost = std::max(0.0, emit_ns - base_ns);
  std::printf("== disabled-path cost (baseline-subtracted, best of 3) ==\n");
  std::printf("  ScopedSpan: %6.2f ns/op   emit(): %6.2f ns/op   "
              "(budget 5 ns)\n",
              span_cost, emit_cost);
#ifdef NDEBUG
  // The ns budget is a claim about optimized builds; unoptimized (-O0)
  // builds report the numbers but only enforce the allocation guarantee.
  gate(span_cost <= 5.0, "disabled ScopedSpan > 5 ns/op");
  gate(emit_cost <= 5.0, "disabled emit() > 5 ns/op");
#endif
  gate(ring_count() == 0, "disabled-path emit allocated a ring");

  // ---- (2) span coverage: fragmented pipelined ping-pong ---------------
  set_enabled(true);
  reset();

  // Force the multi-leg pipelined path regardless of model calibration by
  // lowering the wire ceiling below the packed size (as bench_fig13 does).
  const long long blocks = smoke ? 1024 : 4096;
  const long long block_bytes = smoke ? 256 : 512;
  const long long pitch_bytes = 2 * block_bytes;
  const std::size_t packed = static_cast<std::size_t>(blocks) * block_bytes;
  const std::size_t old_limit = tempi::set_wire_chunk_limit(packed / 4);

  const int rounds = 3; // plus one cache-cold warm-up round
  double recv_e2e_us = 0.0;
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = bench::make_vector_2d(blocks, block_bytes, pitch_bytes);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    void *buf = nullptr;
    vcuda::Malloc(&buf, static_cast<std::size_t>(extent) + 64);
    for (int round = 0; round <= rounds; ++round) {
      if (rank == 0) {
        MPI_Send(buf, 1, t, 1, round, MPI_COMM_WORLD);
        int ack = 0;
        MPI_Recv(&ack, 1, MPI_INT, 1, 999, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
      } else {
        const vcuda::VirtualNs t0 = vcuda::virtual_now();
        MPI_Recv(buf, 1, t, 0, round, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        recv_e2e_us += vcuda::ns_to_us(vcuda::virtual_now() - t0);
        const int ack = 1;
        MPI_Send(&ack, 1, MPI_INT, 0, 999, MPI_COMM_WORLD);
      }
    }
    vcuda::Free(buf);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::set_wire_chunk_limit(old_limit);

  // Receiver-side accounting only: the sender's pack and wire legs overlap
  // by design, so summing its spans would double-count hidden time. On the
  // receiver, Wire (each leg's system recv), Unpack (slot drains + the
  // final synchronize) and LeaseAcquire (the slot lease, cache-cold on the
  // warm-up round) partition the blocking recv almost exactly.
  double span_sum_us = 0.0;
  {
    const Snapshot snap = tempi::trace_snapshot();
    for (const SpanRecord &rec : snap.spans) {
      if (rec.rank != 1 || rec.lane != 0) {
        continue;
      }
      const bool recv_leg = rec.kind == OpKind::Recv &&
                            (rec.phase == Phase::Wire ||
                             rec.phase == Phase::Unpack);
      if (recv_leg || rec.phase == Phase::LeaseAcquire) {
        span_sum_us += vcuda::ns_to_us(rec.t1 - rec.t0);
      }
    }
  }
  const double coverage = recv_e2e_us > 0.0 ? span_sum_us / recv_e2e_us : 0.0;
  std::printf("\n== span coverage (%lld x %s blocks, pipelined, %d rounds) "
              "==\n",
              blocks, bench::human_bytes(double(block_bytes)).c_str(),
              rounds + 1);
  std::printf("  receiver e2e %10.1f us   Wire+Unpack spans %10.1f us   "
              "coverage %.3f (accept 0.8..1.2)\n",
              recv_e2e_us, span_sum_us, coverage);
  gate(coverage >= 0.8 && coverage <= 1.2,
       "receiver Wire+Unpack span sum off by > 20% of e2e recv time");

  // ---- (3) phase completeness ------------------------------------------
  // A persistent round covers GraphCapture/GraphReplay; a direct device
  // copy covers the vcuda MemcpyExec hook lane.
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = bench::make_vector_2d(64, 128, 256);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    void *buf = nullptr;
    vcuda::Malloc(&buf, static_cast<std::size_t>(extent) + 64);
    MPI_Request req = nullptr;
    if (rank == 0) {
      MPI_Send_init(buf, 1, t, 1, 11, MPI_COMM_WORLD, &req);
    } else {
      MPI_Recv_init(buf, 1, t, 0, 11, MPI_COMM_WORLD, &req);
    }
    for (int r = 0; r < 2; ++r) {
      MPI_Start(&req);
      MPI_Wait(&req, MPI_STATUS_IGNORE);
    }
    MPI_Request_free(&req);
    vcuda::Free(buf);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  {
    void *a = nullptr, *b = nullptr;
    vcuda::Malloc(&a, 4096);
    vcuda::Malloc(&b, 4096);
    vcuda::MemcpyAsync(b, a, 4096, vcuda::MemcpyKind::DeviceToDevice,
                       vcuda::default_stream());
    vcuda::StreamSynchronize(vcuda::default_stream());
    vcuda::Free(a);
    vcuda::Free(b);
  }

  const Snapshot snap = tempi::trace_snapshot();
  std::printf("\n== phase completeness ==\n");
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const PhaseSummary &ps = snap.phases[p];
    std::printf("  %-12s %8llu spans  trimean %9.3f us\n",
                phase_name(static_cast<Phase>(p)),
                static_cast<unsigned long long>(ps.count), ps.trimean_us);
    gate(ps.count > 0, "phase with zero recorded spans");
  }
  gate(snap.dropped == 0, "tracer dropped spans at default ring capacity");

  // ---- (4) Chrome trace export -----------------------------------------
  const std::string path = trace_path().empty()
                               ? bench::results_dir() + "/trace_smoke.json"
                               : trace_path();
  gate(write_chrome_trace(path), "write_chrome_trace failed");
  std::string why;
  const bool valid = validate_chrome_trace(path, &why);
  std::printf("\n== chrome trace export ==\n  %s: %s%s%s\n", path.c_str(),
              valid ? "ok" : "INVALID", valid ? "" : " — ",
              valid ? "" : why.c_str());
  gate(valid, "chrome trace failed structural validation");

  bench::emit_json("abl_trace",
                   "disabled-path ns/op + pipelined span coverage + chrome "
                   "export",
                   coverage);
  set_enabled(false);
  tempi::uninstall();
  if (g_failures != 0) {
    std::printf("\n%d gate(s) FAILED\n", g_failures);
  }
  return g_failures;
}
