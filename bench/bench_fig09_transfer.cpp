// Fig. 9a: raw measurements of T_d2h, T_h2d, T_cpu-cpu, T_gpu-gpu for data
// sizes 2^0 .. 2^20 B on the virtual Summit.
// Fig. 9b: the partial (pack/unpack-free) method models composed from 9a:
//   T_device  = T_gpu-gpu
//   T_oneshot = T_cpu-cpu
//   T_staged  = T_d2h + T_cpu-cpu + T_h2d
#include "bench_common.hpp"

#include <cstdio>
#include <vector>

namespace {

/// Half ping-pong latency between two ranks on distinct nodes.
std::vector<double> pingpong_us(bool gpu, const std::vector<double> &sizes,
                                int iters) {
  std::vector<double> out(sizes.size(), 0.0);
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    void *buf = nullptr;
    const auto max_bytes = static_cast<std::size_t>(sizes.back());
    if (gpu) {
      vcuda::Malloc(&buf, max_bytes);
    } else {
      vcuda::MallocHost(&buf, max_bytes);
    }
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const int n = static_cast<int>(sizes[si]);
      support::Sampler s;
      for (int i = 0; i < iters; ++i) {
        const vcuda::VirtualNs t0 = vcuda::virtual_now();
        if (rank == 0) {
          MPI_Send(buf, n, MPI_BYTE, 1, 0, MPI_COMM_WORLD);
          MPI_Recv(buf, n, MPI_BYTE, 1, 0, MPI_COMM_WORLD,
                   MPI_STATUS_IGNORE);
        } else {
          MPI_Recv(buf, n, MPI_BYTE, 0, 0, MPI_COMM_WORLD,
                   MPI_STATUS_IGNORE);
          MPI_Send(buf, n, MPI_BYTE, 0, 0, MPI_COMM_WORLD);
        }
        s.add(vcuda::ns_to_us(vcuda::virtual_now() - t0) / 2.0);
      }
      if (rank == 0) {
        out[si] = s.trimean();
      }
    }
    if (gpu) {
      vcuda::Free(buf);
    } else {
      vcuda::FreeHost(buf);
    }
    MPI_Finalize();
  });
  return out;
}

std::vector<double> copy_us(bool d2h, const std::vector<double> &sizes,
                            int iters) {
  std::vector<double> out;
  const auto max_bytes = static_cast<std::size_t>(sizes.back());
  void *dev = nullptr, *host = nullptr;
  vcuda::Malloc(&dev, max_bytes);
  vcuda::MallocHost(&host, max_bytes);
  for (const double size : sizes) {
    support::Sampler s;
    for (int i = 0; i < iters; ++i) {
      const vcuda::VirtualNs t0 = vcuda::virtual_now();
      if (d2h) {
        vcuda::MemcpyAsync(host, dev, static_cast<std::size_t>(size),
                           vcuda::MemcpyKind::DeviceToHost,
                           vcuda::default_stream());
      } else {
        vcuda::MemcpyAsync(dev, host, static_cast<std::size_t>(size),
                           vcuda::MemcpyKind::HostToDevice,
                           vcuda::default_stream());
      }
      vcuda::StreamSynchronize(vcuda::default_stream());
      s.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
    }
    out.push_back(s.trimean());
  }
  vcuda::Free(dev);
  vcuda::FreeHost(host);
  return out;
}

} // namespace

int main() {
  sysmpi::ensure_self_context();
  const bool smoke = bench::smoke_mode();
  std::vector<double> sizes;
  for (int p = 0; p <= (smoke ? 12 : 20); ++p) {
    sizes.push_back(static_cast<double>(1 << p));
  }
  const int kIters = smoke ? 1 : 7;

  const std::vector<double> d2h = copy_us(true, sizes, kIters);
  const std::vector<double> h2d = copy_us(false, sizes, kIters);
  const std::vector<double> cpu = pingpong_us(false, sizes, kIters);
  const std::vector<double> gpu = pingpong_us(true, sizes, kIters);

  std::printf("Fig. 9a — transfer latencies (virtual us)\n\n");
  std::printf("%6s %10s %10s %10s %10s\n", "log2 B", "Td2h", "Th2d",
              "Tcpu-cpu", "Tgpu-gpu");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%6zu %10.2f %10.2f %10.2f %10.2f\n", i, d2h[i], h2d[i],
                cpu[i], gpu[i]);
  }
  std::printf("\nPaper: ~6 us CUDA-aware floor vs ~1.3 us pinned-host "
              "floor.\n");

  std::printf("\nFig. 9b — partial method models, pack/unpack held at "
              "zero (virtual us)\n\n");
  std::printf("%6s %10s %10s %10s\n", "log2 B", "Tdevice", "Tstaged",
              "Toneshot");
  bool staged_ever_wins = false;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double t_device = gpu[i];
    const double t_oneshot = cpu[i];
    const double t_staged = d2h[i] + cpu[i] + h2d[i];
    if (t_staged < t_device) {
      staged_ever_wins = true;
    }
    std::printf("%6zu %10.2f %10.2f %10.2f\n", i, t_device, t_staged,
                t_oneshot);
  }
  std::printf("\nstaged beats device anywhere: %s (paper: no)\n",
              staged_ever_wins ? "YES (mismatch!)" : "no");
  // Headline: the small-message CUDA-aware penalty (GPU wire floor over
  // pinned-host wire floor) the method models hinge on.
  bench::emit_json("fig09_transfer",
                   "small-message wire floors: gpu-gpu over cpu-cpu "
                   "ping-pong latency at 1 B",
                   gpu.front() / cpu.front());
  return 0;
}
