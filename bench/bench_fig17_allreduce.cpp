// Fig. 17 (extension): GPU reduction collectives with netmodel-chosen
// schedules.
//
// Payload sweep of a fragmented (strided derived-datatype) device
// MPI_Allreduce on a multi-node communicator, comparing:
//
//   * baseline — what an application does without the engine: stage the
//     strided payload through a host pack (sysmpi::baseline_pack), run
//     the system MPI's linear host allreduce on the packed floats, and
//     scatter the result back. The system path serializes P-1 full-size
//     gather legs at the root and re-broadcasts.
//   * ring     — the engine forced to the bandwidth-optimal ring
//     (2(P-1) neighbor hops of bytes/P).
//   * doubling — the engine forced to recursive doubling (ceil(log2 P)
//     exchanges of the full payload).
//   * auto     — the engine with the netmodel choosing (reduce.hpp's
//     choose_allreduce_schedule).
//
// Gates:
//  1. engine(auto) >= 2x geomean speedup over the baseline across the
//     sweep (at >= 8 ranks);
//  2. the netmodel's choice flips across the size sweep — the
//     latency-bound small end must not pick the same schedule as the
//     bandwidth-bound large end, or "auto" is a constant and the model
//     adds nothing.
#include "bench_common.hpp"
#include "sysmpi/pack_baseline.hpp"
#include "tempi/reduce.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

using tempi::red::Schedule;

enum class Mode { Baseline, Ring, Doubling, Auto };

/// Build the sweep's fragmented payload: `objects` vector objects of
/// 8-float blocks strided 3x apart, sized so the packed stream is
/// `target_bytes`.
MPI_Datatype make_type(long long target_bytes, int *objects) {
  constexpr int kBlocks = 64, kBlockLen = 8, kStride = 24;
  constexpr long long kObjBytes = kBlocks * kBlockLen * sizeof(float);
  *objects = static_cast<int>(std::max<long long>(1, target_bytes / kObjBytes));
  MPI_Datatype t = nullptr;
  MPI_Type_vector(kBlocks, kBlockLen, kStride, MPI_FLOAT, &t);
  MPI_Type_commit(&t);
  return t;
}

/// Max-across-ranks virtual latency (us) of one allreduce of
/// `target_bytes` packed payload under `mode`.
double allreduce_us(Mode mode, int ranks, int rpn, long long target_bytes,
                    int rounds) {
  tempi::red::set_forced_schedule(mode == Mode::Ring       ? Schedule::Ring
                                  : mode == Mode::Doubling ? Schedule::Doubling
                                                           : Schedule::Auto);
  std::vector<double> per_rank(static_cast<std::size_t>(ranks), 0.0);
  sysmpi::RunConfig cfg;
  cfg.ranks = ranks;
  cfg.ranks_per_node = rpn;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    int objects = 0;
    MPI_Datatype t = make_type(target_bytes, &objects);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    const std::size_t packed =
        static_cast<std::size_t>(t->size) * static_cast<std::size_t>(objects);
    void *sbuf = nullptr, *rbuf = nullptr;
    vcuda::Malloc(&sbuf,
                  static_cast<std::size_t>(extent) * objects + 64);
    vcuda::Malloc(&rbuf,
                  static_cast<std::size_t>(extent) * objects + 64);
    std::memset(sbuf, 0, static_cast<std::size_t>(extent) * objects);
    std::vector<float> host_in(packed / sizeof(float));
    std::vector<float> host_out(packed / sizeof(float));
    support::Sampler sampler;
    for (int round = 0; round <= rounds; ++round) {
      MPI_Barrier(MPI_COMM_WORLD); // aligned rounds
      const vcuda::VirtualNs t0 = vcuda::virtual_now();
      if (mode == Mode::Baseline) {
        // Application-level fallback: host pack, named-float system
        // allreduce on host buffers (the engine's residency check
        // forwards these to the system linear path), host unpack.
        sysmpi::baseline_pack(host_in.data(), sbuf, objects, *t);
        MPI_Allreduce(host_in.data(), host_out.data(),
                      static_cast<int>(packed / sizeof(float)), MPI_FLOAT,
                      MPI_SUM, MPI_COMM_WORLD);
        sysmpi::baseline_unpack(rbuf, host_out.data(), objects, *t);
      } else {
        MPI_Allreduce(sbuf, rbuf, objects, t, MPI_SUM, MPI_COMM_WORLD);
      }
      if (round > 0) { // discard the cache-cold warm-up round
        sampler.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
      }
    }
    per_rank[static_cast<std::size_t>(rank)] = sampler.trimean();
    vcuda::Free(sbuf);
    vcuda::Free(rbuf);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::red::set_forced_schedule(Schedule::Auto);
  return *std::max_element(per_rank.begin(), per_rank.end());
}

/// The netmodel's schedule choice for this sweep point (queried on a
/// live communicator of the sweep's shape).
Schedule chosen_schedule(int ranks, int rpn, long long bytes) {
  Schedule s = Schedule::Auto;
  sysmpi::RunConfig cfg;
  cfg.ranks = ranks;
  cfg.ranks_per_node = rpn;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      s = tempi::red::choose_allreduce_schedule(
          static_cast<std::size_t>(bytes), MPI_COMM_WORLD, true);
    }
    MPI_Finalize();
  });
  return s;
}

} // namespace

int main() {
  tempi::install();
  const bool smoke = bench::smoke_mode();
  // Freeze the self-tuning model: every sweep point compares the same
  // traffic under four policies, so a table refresh mid-sweep would
  // change leg methods between paired runs.
  tempi::tune::set_enabled(false);

  const int ranks = smoke ? 8 : 16;
  const int rpn = 4; // 2 nodes smoke, 4 nodes full: inter-node hops count
  const int rounds = smoke ? 1 : 3;
  const std::vector<long long> sweep =
      smoke ? std::vector<long long>{64 * 1024, 1 << 20}
            : std::vector<long long>{16 * 1024, 256 * 1024, 4 << 20,
                                     32 << 20};

  std::printf("Fig. 17 — GPU allreduce with netmodel-chosen schedules "
              "(virtual us, max across ranks)\n");
  std::printf("fragmented device payload, %d ranks, %d per node "
              "(%d nodes)\n\n",
              ranks, rpn, ranks / rpn);
  std::printf("%8s | %10s %10s %10s %10s | %8s %s\n", "payload", "baseline",
              "ring", "doubling", "auto", "speedup", "chosen");

  std::vector<double> speedups;
  Schedule first = Schedule::Auto, last = Schedule::Auto;
  std::string points;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const long long bytes = sweep[i];
    const double base = allreduce_us(Mode::Baseline, ranks, rpn, bytes,
                                     rounds);
    const double ring = allreduce_us(Mode::Ring, ranks, rpn, bytes, rounds);
    const double dbl =
        allreduce_us(Mode::Doubling, ranks, rpn, bytes, rounds);
    const double autod = allreduce_us(Mode::Auto, ranks, rpn, bytes, rounds);
    const Schedule chosen = chosen_schedule(ranks, rpn, bytes);
    if (i == 0) {
      first = chosen;
    }
    last = chosen;
    const double speedup = base / autod;
    speedups.push_back(speedup);
    std::printf("%8s | %10.1f %10.1f %10.1f %10.1f | %7.2fx %s\n",
                bench::human_bytes(static_cast<double>(bytes)).c_str(), base,
                ring, dbl, autod, speedup,
                tempi::red::schedule_name(chosen));
    char pt[192];
    std::snprintf(pt, sizeof pt,
                  "%s{\"bytes\": %lld, \"baseline_us\": %.3f, "
                  "\"ring_us\": %.3f, \"doubling_us\": %.3f, "
                  "\"auto_us\": %.3f, \"chosen\": \"%s\"}",
                  points.empty() ? "" : ", ", bytes, base, ring, dbl, autod,
                  tempi::red::schedule_name(chosen));
    points += pt;
  }
  const double geomean = support::geomean(speedups);
  const bool speed_ok = geomean >= 2.0;
  const bool flip_ok = first != last;
  std::printf("\nengine geomean %.2fx over host-staged baseline "
              "(gate: >= 2.00x) %s\n",
              geomean, speed_ok ? "PASS" : "FAIL");
  std::printf("schedule flips across sweep: %s -> %s (gate: differs) %s\n",
              tempi::red::schedule_name(first),
              tempi::red::schedule_name(last), flip_ok ? "PASS" : "FAIL");

  char config[144];
  std::snprintf(config, sizeof config,
                "fragmented device allreduce, %d ranks / %d nodes, engine "
                "(ring/doubling/auto) vs host-staged system baseline",
                ranks, ranks / rpn);
  bench::emit_json("fig17_allreduce", config, geomean,
                   "\"sweep\": [" + points + "]");
  tempi::tune::set_enabled(true);
  tempi::uninstall();
  return speed_ok && flip_ok ? 0 : 1;
}
