// Fig. 15 (extension): the persistent-operation fast path — frozen
// transfer plans + vcuda graph replay — against the per-send paths, on
// the paper's headline pattern of an iterated (halo-style) exchange that
// repeats the identical transfer thousands of times.
//
//   (a) per-arm setup overhead, measured on the vcuda virtual clock: the
//       sender-side call time of MPI_Start vs the equivalent MPI_Isend,
//       each minus a pure-wire baseline (an MPI_Isend of the same packed
//       bytes from a device buffer) so the wire-posting cost cancels and
//       what remains is setup: model probe + kernel launch + cold sync
//       for Isend, graph launch + pre-armed fence for Start.
//       Acceptance: >= 5x lower at the small-payload configurations,
//       where setup is not hidden under payload-proportional pack time.
//   (b) end-to-end iterated bidirectional exchange across fragment
//       sizes: persistent channels vs Isend/Irecv/Waitall vs the
//       forwarded system path. Acceptance: >= 1.2x over the Isend path
//       at small fragment sizes (<= 32 B blocks).
#include "bench_common.hpp"
#include "support/stats.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace {

/// Sender-side virtual-clock cost of one call, averaged over `iters`
/// warm iterations (the first call is discarded as warm-up: it pays the
/// uncached model query / channel freeze).
struct SetupSample {
  double isend_ns = 0.0; ///< typed MPI_Isend call time
  double start_ns = 0.0; ///< MPI_Start call time
  double wire_ns = 0.0;  ///< pure-wire MPI_Isend (packed bytes) call time
};

SetupSample measure_setup(long long blocks, long long block_bytes,
                          int iters) {
  SetupSample out;
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  // The device method on both paths: setup differences are then exactly
  // the per-send machinery (the one-shot/staged methods would add their
  // own copies to both sides alike).
  tempi::set_send_mode(tempi::SendMode::ForceDevice);
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = bench::make_vector_2d(blocks, block_bytes,
                                           2 * block_bytes);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    const std::size_t packed =
        static_cast<std::size_t>(blocks) * static_cast<std::size_t>(
                                               block_bytes);
    void *buf = nullptr;
    vcuda::Malloc(&buf, static_cast<std::size_t>(extent) + 64);
    void *wire = nullptr;
    vcuda::Malloc(&wire, packed);
    if (rank == 0) {
      // Phase 1: typed Isend (one warm-up + iters measured).
      support::Sampler isend_s, start_s, wire_s;
      for (int i = 0; i <= iters; ++i) {
        MPI_Request r = MPI_REQUEST_NULL;
        const vcuda::VirtualNs t0 = vcuda::virtual_now();
        MPI_Isend(buf, 1, t, 1, 1, MPI_COMM_WORLD, &r);
        if (i > 0) {
          isend_s.add(static_cast<double>(vcuda::virtual_now() - t0));
        }
        MPI_Wait(&r, MPI_STATUS_IGNORE);
      }
      // Phase 2: a frozen channel (init pays the exhaustive choice +
      // graph capture once, off the replay path).
      MPI_Request ch = MPI_REQUEST_NULL;
      MPI_Send_init(buf, 1, t, 1, 2, MPI_COMM_WORLD, &ch);
      for (int i = 0; i <= iters; ++i) {
        const vcuda::VirtualNs t0 = vcuda::virtual_now();
        MPI_Start(&ch);
        if (i > 0) {
          start_s.add(static_cast<double>(vcuda::virtual_now() - t0));
        }
        MPI_Wait(&ch, MPI_STATUS_IGNORE);
      }
      MPI_Request_free(&ch);
      // Phase 3: the pure-wire baseline — the same packed byte count
      // posted straight from a device buffer, no datatype machinery.
      for (int i = 0; i <= iters; ++i) {
        MPI_Request r = MPI_REQUEST_NULL;
        const vcuda::VirtualNs t0 = vcuda::virtual_now();
        MPI_Isend(wire, static_cast<int>(packed), MPI_BYTE, 1, 3,
                  MPI_COMM_WORLD, &r);
        if (i > 0) {
          wire_s.add(static_cast<double>(vcuda::virtual_now() - t0));
        }
        MPI_Wait(&r, MPI_STATUS_IGNORE);
      }
      out.isend_ns = isend_s.trimean();
      out.start_ns = start_s.trimean();
      out.wire_ns = wire_s.trimean();
    } else {
      // Drain everything after the sender is done (its sends are
      // buffered), keeping the measured clock free of receiver noise.
      for (int i = 0; i <= iters; ++i) {
        MPI_Recv(buf, 1, t, 0, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
      for (int i = 0; i <= iters; ++i) {
        MPI_Recv(buf, 1, t, 0, 2, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
      for (int i = 0; i <= iters; ++i) {
        MPI_Recv(wire, static_cast<int>(packed), MPI_BYTE, 0, 3,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      }
    }
    vcuda::Free(buf);
    vcuda::Free(wire);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::set_send_mode(tempi::SendMode::Auto);
  return out;
}

enum class Path { Persistent, Isend, System };

/// Per-iteration virtual time (rank 0) of an iterated bidirectional
/// exchange: every rank both sends and receives one strided object per
/// iteration, the halo inner loop.
double exchange_us_per_iter(Path path, long long blocks,
                            long long block_bytes, int iters) {
  double result = 0.0;
  sysmpi::RunConfig cfg;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  tempi::set_send_mode(path == Path::System ? tempi::SendMode::System
                                            : tempi::SendMode::Auto);
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    MPI_Datatype t = bench::make_vector_2d(blocks, block_bytes,
                                           2 * block_bytes);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(t, &lb, &extent);
    void *sbuf = nullptr, *rbuf = nullptr;
    vcuda::Malloc(&sbuf, static_cast<std::size_t>(extent) + 64);
    vcuda::Malloc(&rbuf, static_cast<std::size_t>(extent) + 64);
    const int peer = 1 - rank;

    MPI_Request chans[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
    if (path == Path::Persistent) {
      MPI_Send_init(sbuf, 1, t, peer, 7, MPI_COMM_WORLD, &chans[0]);
      MPI_Recv_init(rbuf, 1, t, peer, 7, MPI_COMM_WORLD, &chans[1]);
    }
    const auto iterate = [&] {
      if (path == Path::Persistent) {
        MPI_Startall(2, chans);
        MPI_Waitall(2, chans, MPI_STATUSES_IGNORE);
        return;
      }
      MPI_Request reqs[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
      MPI_Isend(sbuf, 1, t, peer, 7, MPI_COMM_WORLD, &reqs[0]);
      MPI_Irecv(rbuf, 1, t, peer, 7, MPI_COMM_WORLD, &reqs[1]);
      MPI_Waitall(2, reqs, MPI_STATUSES_IGNORE);
    };
    iterate(); // warm-up: caches, channel freeze already off-loop
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    for (int i = 0; i < iters; ++i) {
      iterate();
    }
    if (rank == 0) {
      result = vcuda::ns_to_us(vcuda::virtual_now() - t0) / iters;
    }
    if (path == Path::Persistent) {
      MPI_Request_free(&chans[0]);
      MPI_Request_free(&chans[1]);
    }
    vcuda::Free(sbuf);
    vcuda::Free(rbuf);
    MPI_Type_free(&t);
    MPI_Finalize();
  });
  tempi::set_send_mode(tempi::SendMode::Auto);
  return result;
}

} // namespace

int main() {
  tempi::install();
  const bool smoke = bench::smoke_mode();
  const int iters = smoke ? 3 : 9;

  // --- (a) per-arm setup overhead (modeled, vcuda clock) ---------------------
  struct SetupCfg {
    long long blocks, block_bytes;
    bool gated; ///< small payloads: setup dominates, the >= 5x gate applies
  };
  const std::vector<SetupCfg> setups = {
      {8, 128, true},   // 1 KiB packed
      {16, 128, true},  // 2 KiB
      {64, 64, true},   // 4 KiB
      {512, 32, false}, // 16 KiB: pack time starts to hide setup
      {8192, 8, false}, // 64 KiB fragmented
  };
  std::printf("Fig. 15a — per-arm setup overhead (virtual ns): MPI_Start "
              "vs MPI_Isend, each minus the pure-wire baseline\n\n");
  std::printf("%8s %7s | %10s %10s | %10s\n", "packed", "block",
              "isend", "start", "reduction");
  int gated = 0, gated_ok = 0;
  for (const SetupCfg &c : setups) {
    const SetupSample s = measure_setup(c.blocks, c.block_bytes, iters);
    const double setup_isend = s.isend_ns - s.wire_ns;
    const double setup_start = s.start_ns - s.wire_ns;
    const double reduction = setup_isend / setup_start;
    if (c.gated) {
      ++gated;
      gated_ok += reduction >= 5.0 ? 1 : 0;
    }
    std::printf("%8s %6lldB | %10.0f %10.0f | %8.2fx%s\n",
                bench::human_bytes(static_cast<double>(c.blocks) *
                                   static_cast<double>(c.block_bytes))
                    .c_str(),
                c.block_bytes, setup_isend, setup_start, reduction,
                c.gated ? "  [gate >= 5x]" : "");
  }
  std::printf("\nsetup >= 5x lower in %d/%d gated configurations.\n", gated_ok,
              gated);

  // --- (b) end-to-end iterated exchange --------------------------------------
  struct ExchCfg {
    long long block_bytes;
    bool gated; ///< small fragments: the >= 1.2x gate applies
  };
  const long long total = smoke ? (16LL << 10) : (64LL << 10);
  const std::vector<ExchCfg> exchs = {{8, true},
                                      {32, true},
                                      {128, false},
                                      {512, false}};
  std::printf("\nFig. 15b — iterated bidirectional exchange, %s objects "
              "(virtual us/iteration, rank 0)\n\n",
              bench::human_bytes(static_cast<double>(total)).c_str());
  std::printf("%7s | %12s %12s %12s | %10s %10s\n", "block", "persistent",
              "isend", "system", "vs isend", "vs system");
  std::vector<double> speedups;
  int exch_gated = 0, exch_ok = 0;
  for (const ExchCfg &c : exchs) {
    const long long blocks = total / c.block_bytes;
    const double pers =
        exchange_us_per_iter(Path::Persistent, blocks, c.block_bytes, iters);
    const double isend =
        exchange_us_per_iter(Path::Isend, blocks, c.block_bytes, iters);
    const double sys =
        exchange_us_per_iter(Path::System, blocks, c.block_bytes,
                             smoke ? 1 : 3);
    const double vs_isend = isend / pers;
    const double vs_sys = sys / pers;
    speedups.push_back(vs_isend);
    if (c.gated) {
      ++exch_gated;
      exch_ok += vs_isend >= 1.2 ? 1 : 0;
    }
    std::printf("%6lldB | %12.1f %12.1f %12.1f | %9.2fx %9.1fx%s\n",
                c.block_bytes, pers, isend, sys, vs_isend, vs_sys,
                c.gated ? "  [gate >= 1.2x]" : "");
  }
  const double geo = support::geomean(speedups);
  std::printf("\npersistent >= 1.2x over the Isend path in %d/%d small-"
              "fragment configurations; geomean %.2fx across the sweep.\n",
              exch_ok, exch_gated, geo);

  // Replay accounting: every steady-state arm was a graph replay.
  const tempi::SendStats stats = tempi::send_stats();
  std::printf("\npersistent counters: init=%llu start=%llu replay_hits=%llu "
              "graph_launches=%llu\n",
              static_cast<unsigned long long>(stats.persistent_init),
              static_cast<unsigned long long>(stats.persistent_start),
              static_cast<unsigned long long>(stats.persistent_replay_hits),
              static_cast<unsigned long long>(
                  stats.persistent_graph_launches));

  bench::emit_json("fig15_persistent",
                   "2 ranks, halo-style iterated exchange, " +
                       bench::human_bytes(static_cast<double>(total)) +
                       " objects, persistent vs isend",
                   geo);
  tempi::uninstall();
  return gated_ok == gated && exch_ok == exch_gated ? 0 : 1;
}
