// Ablation: fixed per-message overhead on the TEMPI critical path.
//
// The paper's Sec. 4/5 claim is that datatype handling adds only
// nanoseconds per message once resources are cached: ~277 ns per cached
// method selection, "tens or hundreds of nanoseconds" amortized for cached
// resources. This bench tracks that budget piece by piece:
//   (1) method selection on the modeled clock — uncached interpolation,
//       choice-cache hit, and packer method-memo hit;
//   (2) datatype lookup on the wall clock — the pre-PR map + shared_ptr
//       path (find_packer) vs the open-addressed handle cache
//       (find_packer_fast);
//   (3) launch configuration — per-call recompute (select_word_size +
//       make_launch_config) vs the commit-time PackPlan;
//   (4) the composite steady-state send setup (lookup + selection + plan
//       + intermediate lease), old recompute path vs new table-driven one.
#include "bench_common.hpp"
#include "tempi/buffer_cache.hpp"
#include "tempi/kernels.hpp"
#include "tempi/packer.hpp"
#include "tempi/perf_model.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace {

/// Wall-clock ns/call of `fn` over `iters` calls; `fn` returns a value the
/// accumulator consumes so the loop cannot be optimized away.
template <typename Fn>
double wall_ns_per_call(int iters, Fn &&fn) {
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    sink += fn();
  }
  const auto t1 = std::chrono::steady_clock::now();
  // Fold the sink into the measurement in a way the optimizer cannot see
  // through but that never changes the result meaningfully.
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() +
      static_cast<double>(sink & 1);
  return ns / iters;
}

/// As wall_ns_per_call, but with `threads` concurrent rank-threads each
/// running `iters` calls of `per_thread()`'s returned closure (per-rank
/// state is built by `per_thread` inside each thread, mirroring TEMPI's
/// per-rank thread_locals). Returns per-call latency under contention.
template <typename PerThread>
double contended_ns_per_call(int threads, int iters, PerThread per_thread) {
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, iters] {
      auto fn = per_thread();
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t local = 0;
      for (int i = 0; i < iters; ++i) {
        local += fn();
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread &w : workers) {
    w.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() +
      static_cast<double>(sink.load() & 1);
  return ns / iters;
}

} // namespace

int main() {
  tempi::install();
  sysmpi::ensure_self_context();

  std::printf("Ablation — per-message overhead budget (Sec. 4/5)\n\n");

  // (1) Method selection, modeled clock.
  const tempi::PerfModel model;
  const vcuda::VirtualNs m0 = vcuda::virtual_now();
  (void)model.choose(64, 262144);
  const vcuda::VirtualNs uncached = vcuda::virtual_now() - m0;
  support::Sampler cached;
  for (int i = 0; i < 16; ++i) {
    const vcuda::VirtualNs h0 = vcuda::virtual_now();
    (void)model.choose(64, 262144);
    cached.add(static_cast<double>(vcuda::virtual_now() - h0));
  }
  std::printf("method selection (modeled clock):\n");
  std::printf("  uncached interpolation: %6llu ns/call\n",
              static_cast<unsigned long long>(uncached));
  std::printf("  choice-cache hit:       %6.0f ns/call  (paper: ~277 ns)\n",
              cached.trimean());
  std::printf("  packer method memo hit: %6llu ns/call  (steady-state "
              "sends skip the model)\n\n",
              static_cast<unsigned long long>(tempi::kMethodMemoHitNs));

  // The committed datatype the wall-clock sections exercise.
  MPI_Datatype t = bench::make_vector_2d(1024, 16, 32);
  const tempi::Packer *raw = tempi::find_packer_fast(t);
  const tempi::StridedBlock sb = raw->block();
  const long long extent = raw->type_extent();
  raw->remember_method(1, 1, tempi::Method::Device);

  const int kIters = bench::smoke_mode() ? 1 << 14 : 1 << 20;

  // (2) Datatype lookup.
  const double lookup_old = wall_ns_per_call(kIters, [t] {
    return reinterpret_cast<std::uintptr_t>(tempi::find_packer(t).get());
  });
  const double lookup_new = wall_ns_per_call(kIters, [t] {
    return reinterpret_cast<std::uintptr_t>(tempi::find_packer_fast(t));
  });
  std::printf("datatype lookup (wall clock):\n");
  std::printf("  map + shared_ptr:   %6.1f ns/call\n", lookup_old);
  std::printf("  handle cache:       %6.1f ns/call  (%.1fx)\n\n", lookup_new,
              lookup_old / lookup_new);

  // (3) Launch configuration.
  const double cfg_old = wall_ns_per_call(kIters, [&sb, extent] {
    const tempi::PackPlan plan = tempi::make_pack_plan(sb, extent);
    return static_cast<std::uint64_t>(plan.config.block.x) + plan.word_size;
  });
  const double cfg_new = wall_ns_per_call(kIters, [raw] {
    const vcuda::LaunchConfig cfg = tempi::launch_config_for(raw->plan(), 1);
    return static_cast<std::uint64_t>(cfg.block.x);
  });
  std::printf("launch configuration (wall clock):\n");
  std::printf("  per-call recompute: %6.1f ns/call\n", cfg_old);
  std::printf("  commit-time plan:   %6.1f ns/call  (%.1fx)\n\n", cfg_new,
              cfg_old / cfg_new);

  // (4) Composite steady-state send setup. The pre-PR path did a map
  // lookup + shared_ptr copy, a thread-local unordered_map probe for the
  // cached model choice (the Key/KeyHash below reproduce the removed
  // PerfModel::choose cache verbatim), per-call word-size/geometry
  // recompute, and a lease whose free list was a std::map tree walk with a
  // shared atomic gauge (also reproduced verbatim); the new path is the
  // handle cache, the packer memo, the plan, and the bucket-array lease.
  struct LegacyKey {
    const void *model;
    std::size_t block, total;
    bool operator==(const LegacyKey &) const = default;
  };
  struct LegacyKeyHash {
    std::size_t operator()(const LegacyKey &k) const {
      std::size_t h = std::hash<const void *>()(k.model);
      h = h * 1000003 ^ std::hash<std::size_t>()(k.block);
      h = h * 1000003 ^ std::hash<std::size_t>()(k.total);
      return h;
    }
  };
  std::unordered_map<LegacyKey, tempi::Method, LegacyKeyHash> legacy_cache;
  legacy_cache.emplace(
      LegacyKey{&model, static_cast<std::size_t>(sb.block_bytes()),
                raw->packed_bytes(1)},
      tempi::Method::Device);
  // Shared pre-PR state: the model lock acceleration_method took on every
  // send, and the single process-wide lease gauge.
  std::shared_mutex legacy_model_mutex;
  std::atomic<std::size_t> legacy_gauge{0};
  // One pre-PR rank: a per-thread capacity-keyed std::map free list (the
  // free lists were thread_local), probing the shared structures per call.
  struct LegacyRankState {
    std::map<std::size_t, std::vector<void *>> free_list;
    ~LegacyRankState() { // give pooled buffers back when the rank exits
      for (auto &[cap, ptrs] : free_list) {
        for (void *p : ptrs) {
          vcuda::Free(p);
        }
      }
    }
  };
  const auto legacy_rank = [&, t] {
    auto state = std::make_shared<LegacyRankState>();
    auto *free_list = &state->free_list;
    void *seed = nullptr;
    vcuda::Malloc(&seed, raw->packed_bytes(1));
    (*free_list)[raw->packed_bytes(1)].push_back(seed);
    return [&, t, state, free_list] {
      const auto packer = tempi::find_packer(t);
      const std::shared_lock<std::shared_mutex> model_lock(legacy_model_mutex);
      const LegacyKey key{
          &model, static_cast<std::size_t>(packer->block().block_bytes()),
          packer->packed_bytes(1)};
      const tempi::Method method = legacy_cache.find(key)->second;
      vcuda::this_thread_timeline().advance(tempi::kModelQueryCachedNs);
      const int w = tempi::select_word_size(packer->block());
      const vcuda::LaunchConfig cfg =
          tempi::make_launch_config(packer->block(), w, 1);
      // lease ...
      const auto it = free_list->lower_bound(packer->packed_bytes(1));
      void *wire = it->second.back();
      it->second.pop_back();
      legacy_gauge.fetch_add(1, std::memory_order_relaxed);
      vcuda::this_thread_timeline().advance(120);
      // ... and release, as the pipeline destructor did.
      (*free_list)[it->first].push_back(wire);
      legacy_gauge.fetch_sub(1, std::memory_order_relaxed);
      return static_cast<std::uint64_t>(cfg.block.x) +
             static_cast<std::uint64_t>(method) +
             reinterpret_cast<std::uintptr_t>(wire);
    };
  };
  // One table-driven rank: everything it touches per call is lock-free or
  // thread-local (the generation load mirrors acceleration_method).
  std::atomic<std::uint64_t> model_generation{1};
  const auto table_rank = [&, t] {
    return [&, t] {
      const tempi::Packer *packer = tempi::find_packer_fast(t);
      const std::uint64_t gen =
          model_generation.load(std::memory_order_acquire);
      const auto method = packer->cached_method(1, gen);
      vcuda::this_thread_timeline().advance(tempi::kMethodMemoHitNs);
      const vcuda::LaunchConfig cfg =
          tempi::launch_config_for(packer->plan(), 1);
      tempi::CachedBuffer wire = tempi::lease_buffer(
          vcuda::MemorySpace::Device, packer->packed_bytes(1));
      return static_cast<std::uint64_t>(cfg.block.x) +
             static_cast<std::uint64_t>(
                 method.value_or(tempi::Method::Device)) +
             reinterpret_cast<std::uintptr_t>(wire.get());
    };
  };
  // Best of three: per-call overheads this small are easily smeared by a
  // scheduler tick; the minimum is the least-noise sample.
  const auto best_of3 = [kIters](int ranks, const auto &rank) {
    double best = contended_ns_per_call(ranks, kIters, rank);
    for (int i = 0; i < 2; ++i) {
      best = std::min(best, contended_ns_per_call(ranks, kIters, rank));
    }
    return best;
  };
  const double setup_old1 = best_of3(1, legacy_rank);
  const double setup_new1 = best_of3(1, table_rank);
  constexpr int kRanks = 4;
  const double setup_old4 = best_of3(kRanks, legacy_rank);
  const double setup_new4 = best_of3(kRanks, table_rank);
  std::printf("steady-state send setup: lookup + selection + plan + lease "
              "(wall clock):\n");
  std::printf("                          1 rank     %d ranks\n", kRanks);
  std::printf("  pre-PR recompute path: %6.1f     %6.1f  ns/call\n",
              setup_old1, setup_old4);
  std::printf("  table-driven path:     %6.1f     %6.1f  ns/call\n",
              setup_new1, setup_new4);
  std::printf("  reduction:             %5.1fx     %5.1fx\n\n",
              setup_old1 / setup_new1, setup_old4 / setup_new4);

  // (5) Self-tuning observation path. The harvest sites wrap completed
  // pack/wire/unpack spans in a ScopedObservation; its whole budget is two
  // virtual-clock reads and one wait-free CAS fold when tuning is on, and
  // a single relaxed load of the enable flag when it is off. Gated so the
  // hot path cannot silently regress.
  const auto observe_once = [] {
    tempi::tune::ScopedObservation obs(tempi::tune::Axis::DevicePack, 64,
                                       262144);
    return std::uint64_t{1};
  };
  const auto best_wall3 = [kIters](const auto &fn) {
    double best = wall_ns_per_call(kIters, fn);
    for (int i = 0; i < 2; ++i) {
      best = std::min(best, wall_ns_per_call(kIters, fn));
    }
    return best;
  };
  const double obs_on = best_wall3(observe_once);
  tempi::tune::set_enabled(false);
  const double obs_off = best_wall3(observe_once);
  tempi::tune::set_enabled(true);
  tempi::tune::reset_counters(); // the synthetic folds are not real samples
  std::printf("tuner observation (wall clock):\n");
  std::printf("  TEMPI_TUNE=1 fold:  %6.1f ns/call  (budget: 50)\n", obs_on);
  std::printf("  TEMPI_TUNE=0 check: %6.1f ns/call  (one relaxed load)\n\n",
              obs_off);

  std::printf("paper headline: cached selection adds ~277 ns; cached "
              "resources amortize to tens or hundreds of ns per message.\n");

  bool gates_ok = true;
  [[maybe_unused]] const auto gate = [&gates_ok](bool ok, const char *what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      gates_ok = false;
    }
  };
#ifdef NDEBUG
  // The ns budget is a claim about optimized builds; unoptimized (-O0,
  // ASan) runs report the numbers but do not enforce them.
  gate(obs_on <= 50.0, "armed observation exceeds the 50 ns/op budget");
  gate(obs_off <= 20.0,
       "disarmed observation costs more than a relaxed-load check");
#endif

  bench::emit_json("abl_overhead",
                   "steady-state send setup (lookup+selection+plan+lease), "
                   "pre-PR recompute path vs table-driven, 1 rank",
                   setup_old1 / setup_new1);
  MPI_Type_free(&t);
  tempi::uninstall();
  return gates_ok ? 0 : 1;
}
