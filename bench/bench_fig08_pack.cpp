// Fig. 8: MPI_Pack latency for 2-D objects described as vector or subarray
// datatypes, baseline system MPI vs TEMPI. Labels follow the figure:
// datatype / total object size / count / contiguous block size, pitch 512 B
// (the 4 MiB / 1 B configuration uses a 2 B pitch to keep the allocation
// within laptop memory; the block structure — what drives the baseline's
// per-block cost — is unchanged).
#include "bench_common.hpp"

#include <cstdio>
#include <vector>

namespace {

struct Config {
  const char *kind; ///< "vec" or "sub"
  long long object_bytes;
  int count;
  long long block_bytes;
  long long pitch_bytes;
};

const std::vector<Config> kConfigs = {
    {"vec", 1024, 1, 1, 512},
    {"vec", 1024, 1, 8, 512},
    {"sub", 1024, 1, 8, 512},
    {"vec", 1024, 1, 128, 512},
    {"vec", 1024, 1, 256, 512},
    {"vec", 1024, 2, 8, 512},
    {"vec", 4 * 1024 * 1024, 2, 1, 2},
};

MPI_Datatype build(const Config &c) {
  const long long blocks = c.object_bytes / c.block_bytes;
  return c.kind[0] == 'v'
             ? bench::make_vector_2d(blocks, c.block_bytes, c.pitch_bytes)
             : bench::make_subarray_2d(blocks, c.block_bytes, c.pitch_bytes);
}

} // namespace

int main() {
  sysmpi::ensure_self_context();

  std::printf("Fig. 8 — MPI_Pack latency on device buffers (virtual us)\n\n");
  std::printf("%-26s %14s %14s %10s\n", "datatype/size/count/block",
              "baseline(us)", "TEMPI(us)", "speedup");

  const bool smoke = bench::smoke_mode();
  std::vector<double> speedups;
  for (const Config &c : kConfigs) {
    if (smoke && c.object_bytes / c.block_bytes > 100000) {
      continue; // the 4M-block baseline walk is the slow part
    }
    MPI_Datatype t = build(c);
    // Baseline iterations are expensive for fragmented objects; one
    // measured iteration is enough (the virtual clock is deterministic).
    const int base_iters =
        smoke || c.object_bytes / c.block_bytes > 100000 ? 1 : 3;
    const double baseline = bench::pack_latency_us(t, c.count, base_iters);
    double with_tempi = 0.0;
    {
      tempi::ScopedInterposer guard;
      MPI_Datatype t2 = build(c);
      with_tempi = bench::pack_latency_us(t2, c.count, smoke ? 1 : 5);
      MPI_Type_free(&t2);
    }
    char label[64];
    std::snprintf(label, sizeof label, "%s %s %d / %lld", c.kind,
                  bench::human_bytes(static_cast<double>(c.object_bytes))
                      .c_str(),
                  c.count, c.block_bytes);
    speedups.push_back(baseline / with_tempi);
    std::printf("%-26s %14.1f %14.1f %9.0fx\n", label, baseline, with_tempi,
                baseline / with_tempi);
    MPI_Type_free(&t);
  }
  std::printf("\nPaper: speedup 5.7x (large blocks, small objects) to "
              "242,000x (4 MiB object, 1 B blocks).\n");
  bench::emit_json("fig08_pack",
                   "MPI_Pack, TEMPI kernels vs baseline per-block loop "
                   "across the Fig. 8 configurations",
                   support::geomean(speedups));
  return 0;
}
