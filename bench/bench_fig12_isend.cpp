// Fig. 12 variant: the halo exchange issued through the paper's dominant
// call pattern — MPI_Isend/MPI_Irecv per region + one MPI_Waitall — which
// the non-blocking request engine (tempi/async.hpp) accelerates. Compares
// modeled whole-exchange latency of TEMPI's engine against the system MPI's
// baseline datatype path, which is what every non-blocking call fell
// through to before the engine existed.
//
// Usage: bench_fig12_isend [brick=24] [iters=2]
#include "bench_common.hpp"
#include "halo/halo.hpp"
#include "tempi/async.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

namespace {

/// Factor `n` into a near-cubic px*py*pz grid.
void factor3(int n, int *px, int *py, int *pz) {
  *px = *py = *pz = 1;
  int rest = n;
  int *dims[3] = {pz, py, px};
  for (int i = 0; i < 3; ++i) {
    const int target = static_cast<int>(std::ceil(
        std::pow(static_cast<double>(rest), 1.0 / (3 - i)) - 1e-9));
    int d = target;
    while (rest % d != 0) {
      ++d;
    }
    *dims[i] = d;
    rest /= d;
  }
}

struct Result {
  double post_us = 0.0; ///< max across ranks: Isend/Irecv posting loop
  double wait_us = 0.0; ///< max across ranks: Waitall
  [[nodiscard]] double total_us() const { return post_us + wait_us; }
};

Result run(const halo::Config &cfg, int ranks_per_node, int iters) {
  std::vector<halo::PhaseTimes> per_rank(
      static_cast<std::size_t>(cfg.ranks()));
  sysmpi::RunConfig rc;
  rc.ranks = cfg.ranks();
  rc.ranks_per_node = ranks_per_node;
  sysmpi::run_ranks(rc, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    void *grid = nullptr;
    vcuda::Malloc(&grid, cfg.grid_bytes());
    std::memset(grid, 0, cfg.grid_bytes());
    {
      halo::Exchanger ex(cfg, MPI_COMM_WORLD);
      ex.exchange_isend(grid); // warm-up (buffer caches, perf model)
      halo::PhaseTimes sum;
      for (int i = 0; i < iters; ++i) {
        const halo::PhaseTimes t = ex.exchange_isend(grid);
        sum.pack_us += t.pack_us / iters;
        sum.comm_us += t.comm_us / iters;
      }
      per_rank[static_cast<std::size_t>(rank)] = sum;
    }
    vcuda::Free(grid);
    MPI_Finalize();
  });
  Result r;
  for (const halo::PhaseTimes &t : per_rank) {
    r.post_us = std::max(r.post_us, t.pack_us);
    r.wait_us = std::max(r.wait_us, t.comm_us);
  }
  return r;
}

} // namespace

int main(int argc, char **argv) {
  const bool smoke = bench::smoke_mode();
  const int brick = argc > 1 ? std::atoi(argv[1]) : (smoke ? 8 : 24);
  const int iters = argc > 2 ? std::atoi(argv[2]) : (smoke ? 1 : 2);
  if (brick < 1 || iters < 1) {
    std::fprintf(stderr, "usage: %s [brick>=1] [iters>=1]\n", argv[0]);
    return 2;
  }
  const std::vector<int> nodes = smoke ? std::vector<int>{1, 2}
                                       : std::vector<int>{1, 2, 4};
  const std::vector<int> rpns = smoke ? std::vector<int>{1}
                                      : std::vector<int>{1, 2, 6};

  std::printf("Fig. 12 (non-blocking) — halo exchange via Isend/Irecv/"
              "Waitall, %d^3 points/rank, 8 doubles/point, radius 3\n\n",
              brick);
  std::printf("%-10s %10s %12s %12s | %12s %10s\n", "nodes/rpn", "post(us)",
              "waitall(us)", "total(us)", "baseline(us)", "speedup");

  // Pass/fail gate: the geometric-mean speedup across the sweep must beat
  // the baseline. Per-config gating would be flaky at the most contended
  // scales, where thread interleaving perturbs the modeled NIC ordering.
  double log_speedup_sum = 0.0;
  int configs = 0;
  bool engine_saw_traffic = true;
  for (const int n : nodes) {
    for (const int rpn : rpns) {
      const int ranks = n * rpn;
      halo::Config cfg;
      cfg.nx = cfg.ny = cfg.nz = brick;
      cfg.vals = 8;
      cfg.radius = 3;
      factor3(ranks, &cfg.px, &cfg.py, &cfg.pz);

      tempi::install();
      tempi::async::reset_engine_stats();
      const Result fast = run(cfg, rpn, iters);
      const tempi::async::EngineStats es = tempi::async::engine_stats();
      tempi::uninstall();
      const Result base = run(cfg, rpn, /*iters=*/1);

      const double speedup = base.total_us() / fast.total_us();
      log_speedup_sum += std::log(speedup);
      ++configs;
      std::printf("%3d/%-6d %10.1f %12.1f %12.1f | %12.1f %9.0fx\n", n, rpn,
                  fast.post_us, fast.wait_us, fast.total_us(),
                  base.total_us(), speedup);
      if (es.isends == 0 || es.irecvs == 0) {
        std::printf("  WARNING: request engine saw no accelerated traffic\n");
        engine_saw_traffic = false;
      }
    }
  }
  const double geomean = std::exp(log_speedup_sum / configs);
  std::printf("\ngeometric-mean speedup over the forwarded baseline: %.1fx\n",
              geomean);
  bench::emit_json("fig12_isend",
                   "halo traffic via Isend/Irecv/Waitall, request engine "
                   "vs forwarded baseline",
                   geomean);
  std::printf("Paper (Fig. 12 / Sec. 6.4): the non-blocking datatype path "
              "dominates the baseline exchange; TEMPI's engine packs with "
              "kernels and batches unpacks at Waitall, so speedup is "
              "largest at small scale.\n");
  if (!engine_saw_traffic || geomean <= 1.0) {
    std::printf("FAIL: engine did not beat the forwarded baseline\n");
    return 1;
  }
  return 0;
}
