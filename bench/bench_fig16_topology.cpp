// Fig. 16 (extension): topology- and congestion-aware communication.
//
// Two gates, both at cluster scale (256 ranks across 32 virtual nodes in
// the full sweep):
//
//  1. NIC incast kill — a *fragmented* MPI_Neighbor_alltoallv where every
//     rank ships one leg into each of `fanout` node bands (its j-th
//     neighbor lives in band j). Neighbor collectives fan out in
//     neighbor-list order and adjacency lists are ascending by rank, so
//     the whole job's j-th departure wave converges on band j: every
//     node in that band absorbs a synchronized many-source burst on its
//     ejection port (the incast backlog in sysmpi/netmodel.hpp) while
//     the other nodes' NICs sit idle. The node-aware schedule
//     (tempi/topology.hpp) walks destination nodes round-robin from a
//     rank-salted start, decorrelating the waves so every wave spreads
//     over all NICs at their drain rate. Banded neighborhoods are the
//     sparse-exchange shape of partitioned meshes and grid halos, where
//     neighbor ranks cluster in narrow rank (= node) bands.
//     Gate: node-aware >= 1.3x geomean over rank order across the sweep.
//
//  2. reorder=1 rank remapping — a periodic 2-D halo exchange on a
//     communicator from MPI_Cart_create. With reorder=0 the row-major
//     identity layout slices each node's ranks into a 1xN strip (long
//     inter-node perimeter); reorder=1 re-places ranks into near-square
//     bricks, converting perimeter edges into on-node traffic.
//     Gate: reorder=1 strictly beats the identity mapping.
//
// A dense rotated MPI_Alltoallv is deliberately NOT used for gate 1: the
// engine's pairwise rotation staggers senders by rank already, so at any
// instant a destination node hears from at most one source node — only
// list-ordered fan-outs (neighbor collectives, persistent fan-outs)
// expose the incast.
#include "bench_common.hpp"
#include "tempi/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace {

/// targets[s] = the `fanout` peers rank s sends one leg to: one in each
/// node band j = nodes [j*nnodes/fanout, (j+1)*nnodes/fanout), chosen by
/// a fixed affine shuffle of the sender so in-degree stays == fanout
/// (every NIC carries the same total load — the two issue policies
/// differ only in WHEN each port's share arrives, not how much). Lists
/// come out ascending, which IS the neighbor fan-out order: wave j of
/// every rank targets band j simultaneously.
std::vector<std::vector<int>> make_pattern(int ranks, int rpn, int fanout) {
  const int nnodes = ranks / rpn;
  std::vector<std::vector<int>> targets(static_cast<std::size_t>(ranks));
  for (int s = 0; s < ranks; ++s) {
    std::vector<int> &t = targets[static_cast<std::size_t>(s)];
    for (int j = 0; j < fanout; ++j) {
      const int lo = j * nnodes / fanout * rpn; // first rank of band j
      const int band = (j + 1) * nnodes / fanout * rpn - lo;
      int d = lo + (s * 5 + 1) % band;
      if (d == s) {
        d = lo + (s * 5 + 2) % band; // never self; can't collide twice
      }
      t.push_back(d);
    }
  }
  return targets;
}

/// Max-across-ranks virtual latency (us) of one fragmented
/// MPI_Neighbor_alltoallv (contiguous device legs, one per neighbor)
/// under the given issue policy.
double sparse_neighbor_us(bool node_aware, int ranks, int rpn,
                          const std::vector<std::vector<int>> &targets,
                          long long bytes, int rounds) {
  tempi::topo::set_enabled(node_aware);
  std::vector<double> per_rank(static_cast<std::size_t>(ranks), 0.0);
  sysmpi::RunConfig cfg;
  cfg.ranks = ranks;
  cfg.ranks_per_node = rpn;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    const std::vector<int> &dsts = targets[static_cast<std::size_t>(rank)];
    std::vector<int> srcs; // in-neighbors, ascending like the out lists
    for (int s = 0; s < ranks; ++s) {
      const std::vector<int> &t = targets[static_cast<std::size_t>(s)];
      if (std::find(t.begin(), t.end(), rank) != t.end()) {
        srcs.push_back(s);
      }
    }
    const std::vector<int> wone(
        std::max(dsts.size(), srcs.size()), 1);
    MPI_Comm graph = MPI_COMM_NULL;
    MPI_Dist_graph_create_adjacent(
        MPI_COMM_WORLD, static_cast<int>(srcs.size()), srcs.data(),
        wone.data(), static_cast<int>(dsts.size()), dsts.data(), wone.data(),
        MPI_INFO_NULL, /*reorder=*/0, &graph);
    std::vector<int> scounts(dsts.size(), static_cast<int>(bytes));
    std::vector<int> rcounts(srcs.size(), static_cast<int>(bytes));
    std::vector<int> sdispls(dsts.size(), 0), rdispls(srcs.size(), 0);
    for (std::size_t i = 0; i < dsts.size(); ++i) {
      sdispls[i] = static_cast<int>(i * static_cast<std::size_t>(bytes));
    }
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      rdispls[i] = static_cast<int>(i * static_cast<std::size_t>(bytes));
    }
    void *sbuf = nullptr, *rbuf = nullptr;
    vcuda::Malloc(&sbuf, dsts.size() * static_cast<std::size_t>(bytes) + 64);
    vcuda::Malloc(&rbuf, srcs.size() * static_cast<std::size_t>(bytes) + 64);
    support::Sampler sampler;
    for (int round = 0; round <= rounds; ++round) {
      // Re-synchronize virtual clocks: without this only the first round
      // has the aligned departure waves the pattern is built around
      // (banded receivers finish progressively later, smearing the next
      // round's waves across their skew).
      MPI_Barrier(MPI_COMM_WORLD);
      const vcuda::VirtualNs t0 = vcuda::virtual_now();
      MPI_Neighbor_alltoallv(sbuf, scounts.data(), sdispls.data(), MPI_BYTE,
                             rbuf, rcounts.data(), rdispls.data(), MPI_BYTE,
                             graph);
      if (round > 0) { // discard the cache-cold warm-up round
        sampler.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
      }
    }
    per_rank[static_cast<std::size_t>(rank)] = sampler.trimean();
    vcuda::Free(sbuf);
    vcuda::Free(rbuf);
    MPI_Comm_free(&graph);
    MPI_Finalize();
  });
  tempi::topo::set_enabled(true);
  return *std::max_element(per_rank.begin(), per_rank.end());
}

/// Max-across-ranks virtual latency (us) of one periodic 2-D halo round
/// (4 neighbor legs each way) on an MPI_Cart_create communicator built
/// with the given reorder flag.
double halo_us(int reorder, int px, int py, int rpn, long long bytes,
               int rounds) {
  const int ranks = px * py;
  std::vector<double> per_rank(static_cast<std::size_t>(ranks), 0.0);
  sysmpi::RunConfig cfg;
  cfg.ranks = ranks;
  cfg.ranks_per_node = rpn;
  sysmpi::run_ranks(cfg, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    const int dims[2] = {py, px};
    const int periods[2] = {1, 1};
    MPI_Comm cart = MPI_COMM_NULL;
    MPI_Cart_create(MPI_COMM_WORLD, 2, dims, periods, reorder, &cart);
    int nbr[4] = {0, 0, 0, 0}; // {up, down, left, right}
    MPI_Cart_shift(cart, 0, 1, &nbr[0], &nbr[1]);
    MPI_Cart_shift(cart, 1, 1, &nbr[2], &nbr[3]);
    void *sbuf[4] = {nullptr, nullptr, nullptr, nullptr};
    void *rbuf[4] = {nullptr, nullptr, nullptr, nullptr};
    for (int i = 0; i < 4; ++i) {
      vcuda::Malloc(&sbuf[i], static_cast<std::size_t>(bytes));
      vcuda::Malloc(&rbuf[i], static_cast<std::size_t>(bytes));
    }
    support::Sampler sampler;
    for (int round = 0; round <= rounds; ++round) {
      MPI_Barrier(MPI_COMM_WORLD); // aligned rounds, as in the sparse gate
      const vcuda::VirtualNs t0 = vcuda::virtual_now();
      MPI_Request reqs[8];
      for (int i = 0; i < 4; ++i) {
        MPI_Irecv(rbuf[i], static_cast<int>(bytes), MPI_BYTE, nbr[i], round,
                  cart, &reqs[i]);
      }
      for (int i = 0; i < 4; ++i) {
        // Send up pairs with the neighbor's recv-from-down and vice
        // versa: post sends toward the partner of each posted receive.
        MPI_Isend(sbuf[i], static_cast<int>(bytes), MPI_BYTE, nbr[i ^ 1],
                  round, cart, &reqs[4 + i]);
      }
      MPI_Waitall(8, reqs, MPI_STATUSES_IGNORE);
      if (round > 0) { // discard the cache-cold warm-up round
        sampler.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
      }
    }
    per_rank[static_cast<std::size_t>(rank)] = sampler.trimean();
    for (int i = 0; i < 4; ++i) {
      vcuda::Free(sbuf[i]);
      vcuda::Free(rbuf[i]);
    }
    MPI_Comm_free(&cart);
    MPI_Finalize();
  });
  return *std::max_element(per_rank.begin(), per_rank.end());
}

} // namespace

int main() {
  tempi::install();
  const bool smoke = bench::smoke_mode();
  // Freeze the self-tuning model for the whole bench: both gates compare
  // the SAME traffic under two issue policies, so a table refresh between
  // the paired runs would change leg methods mid-comparison.
  tempi::tune::set_enabled(false);

  // Full sweep: Summit-scale fan-in (256 ranks over 32 nodes). Smoke
  // keeps the node count high enough (8) that list-order issue still
  // collides, at a fraction of the thread count.
  const int ranks = smoke ? 64 : 256;
  const int rpn = 8;
  const int rounds = smoke ? 1 : 3;

  struct SweepCfg {
    int fanout;
    long long bytes;
  };
  // Legs must be big enough that a band's drain dominates the fixed
  // per-leg overheads, or the sweep measures latency, not incast.
  const std::vector<SweepCfg> sweep =
      smoke ? std::vector<SweepCfg>{{4, 16 * 1024}, {4, 32 * 1024}}
            : std::vector<SweepCfg>{
                  {4, 16 * 1024}, {6, 32 * 1024}, {8, 64 * 1024}};

  std::printf("Fig. 16 — topology-aware scheduling and rank remapping "
              "(virtual us, max across ranks)\n");
  std::printf("fragmented neighbor alltoallv: %d ranks, %d per node "
              "(%d nodes)\n\n",
              ranks, rpn, ranks / rpn);
  std::printf("%6s %8s | %12s %12s | %8s\n", "fanout", "leg",
              "rank order", "node aware", "speedup");

  std::vector<double> speedups;
  for (const SweepCfg &c : sweep) {
    const std::vector<std::vector<int>> targets =
        make_pattern(ranks, rpn, c.fanout);
    const double base =
        sparse_neighbor_us(false, ranks, rpn, targets, c.bytes, rounds);
    const double aware =
        sparse_neighbor_us(true, ranks, rpn, targets, c.bytes, rounds);
    const double speedup = base / aware;
    speedups.push_back(speedup);
    std::printf("%6d %7s | %12.1f %12.1f | %7.2fx\n", c.fanout,
                bench::human_bytes(static_cast<double>(c.bytes)).c_str(),
                base, aware, speedup);
  }
  const double geomean = support::geomean(speedups);
  const bool incast_ok = geomean >= 1.3;
  std::printf("\nnode-aware schedule geomean %.2fx over rank order "
              "(gate: >= 1.30x) %s\n\n",
              geomean, incast_ok ? "PASS" : "FAIL");

  // reorder=1 gate: periodic 2-D halo; identity slices nodes into 1xN
  // strips, the brick remap shortens each node's inter-node perimeter.
  const int px = smoke ? 8 : 16;
  const int py = smoke ? 8 : 16;
  const long long halo_bytes = smoke ? 16 * 1024 : 64 * 1024;
  const double identity = halo_us(0, px, py, rpn, halo_bytes, rounds);
  const double remapped = halo_us(1, px, py, rpn, halo_bytes, rounds);
  const bool reorder_ok = remapped < identity;
  std::printf("%dx%d periodic halo, %s legs: reorder=0 %.1f us, "
              "reorder=1 %.1f us (%.2fx, gate: strict improvement) %s\n",
              px, py,
              bench::human_bytes(static_cast<double>(halo_bytes)).c_str(),
              identity, remapped, identity / remapped,
              reorder_ok ? "PASS" : "FAIL");

  char config[176];
  std::snprintf(config, sizeof config,
                "fragmented neighbor alltoallv %d ranks / %d nodes, "
                "node-aware vs rank-order issue; %dx%d periodic halo "
                "reorder=1 vs identity",
                ranks, ranks / rpn, px, py);
  char extra[160];
  std::snprintf(extra, sizeof extra,
                "\"reorder\": {\"identity_us\": %.3f, \"remapped_us\": %.3f, "
                "\"speedup\": %.4f}",
                identity, remapped, identity / remapped);
  bench::emit_json("fig16_topology", config, geomean, extra);
  tempi::tune::set_enabled(true);
  tempi::uninstall();
  return incast_ok && reorder_ok ? 0 : 1;
}
