// Ablation: thread-multiple scaling of the request engine.
//
// The pre-PR engine funneled every Isend/Irecv/Wait and every persistent
// Start through one pool mutex and one lease-registry mutex, so four
// application threads made each other's "nanoseconds per message" budget
// (Sec. 4/5) a lock-convoy lottery. This bench hammers the full
// non-blocking + persistent hot path from 1–8 plain std::threads — each
// with its own rank context and self-traffic, so every shared structure
// they meet (pool shards, buffer-cache depot, handle cache) belongs to
// TEMPI, not the wire — and gates on two claims:
//   (1) scaling: per-op CPU cost must not inflate more than ~33% under
//       4-way concurrency (throughput_cpu(4) >= 3x throughput_cpu(1));
//   (2) no single-thread tax: the table-driven steady-state setup must
//       still beat the pre-PR recompute path from bench_abl_overhead.
//
// Throughput is normalized by per-thread CPU time
// (CLOCK_THREAD_CPUTIME_ID), not wall time: CI runners and this repo's CI
// gate boxes have few cores, and a wall-clock target would measure the
// scheduler. Lock convoys still show up in CPU time — failed fast paths,
// futex syscalls, and cache-line bouncing all burn cycles on-CPU.
#include "bench_common.hpp"
#include "tempi/async.hpp"
#include "tempi/buffer_cache.hpp"
#include "tempi/kernels.hpp"
#include "tempi/packer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <map>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace {

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// One worker's hammer cycle: pre-posted Irecv + eager Isend + Waitall on
/// the request engine, then a persistent Start pair + Waitall on the
/// channel fast path. Self-traffic with a per-thread tag: each thread owns
/// a single-rank world, so the wire never blocks and the only shared state
/// is TEMPI's.
struct Worker {
  MPI_Datatype type = nullptr;
  void *sbuf = nullptr;
  void *rbuf = nullptr;
  MPI_Request channels[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
  int tag = 0;

  void setup(int tid) {
    int provided = 0;
    MPI_Init_thread(nullptr, nullptr, MPI_THREAD_MULTIPLE, &provided);
    tag = tid;
    type = bench::make_vector_2d(64, 16, 32);
    MPI_Aint lb = 0, extent = 0;
    MPI_Type_get_extent(type, &lb, &extent);
    vcuda::Malloc(&sbuf, static_cast<std::size_t>(extent) + 64);
    vcuda::Malloc(&rbuf, static_cast<std::size_t>(extent) + 64);
    MPI_Recv_init(rbuf, 1, type, 0, tag + 4096, MPI_COMM_WORLD, &channels[0]);
    MPI_Send_init(sbuf, 1, type, 0, tag + 4096, MPI_COMM_WORLD, &channels[1]);
  }

  std::uint64_t cycle() {
    MPI_Request reqs[2] = {MPI_REQUEST_NULL, MPI_REQUEST_NULL};
    MPI_Irecv(rbuf, 1, type, 0, tag, MPI_COMM_WORLD, &reqs[0]);
    MPI_Isend(sbuf, 1, type, 0, tag, MPI_COMM_WORLD, &reqs[1]);
    MPI_Waitall(2, reqs, MPI_STATUSES_IGNORE);
    MPI_Start(&channels[0]);
    MPI_Start(&channels[1]);
    MPI_Waitall(2, channels, MPI_STATUSES_IGNORE);
    return reinterpret_cast<std::uintptr_t>(reqs[0]) & 1;
  }

  void teardown() {
    MPI_Request_free(&channels[0]);
    MPI_Request_free(&channels[1]);
    MPI_Type_free(&type);
    vcuda::Free(sbuf);
    vcuda::Free(rbuf);
    MPI_Finalize();
  }
};

/// CPU-time-normalized throughput (cycles per CPU-second) of `threads`
/// workers each running `iters` cycles: total cycles over the slowest
/// thread's on-CPU seconds. With per-op CPU cost c this is threads/c, so
/// the 4-vs-1 thread ratio directly measures concurrency-induced CPU
/// inflation, independent of how many cores the host happens to have.
double hammer_throughput(int threads, int iters) {
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  std::atomic<std::uint64_t> sink{0};
  std::vector<double> cpu_s(static_cast<std::size_t>(threads), 0.0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w, iters] {
      Worker worker;
      worker.setup(w);
      std::uint64_t local = worker.cycle(); // warm every cache before timing
      local += worker.cycle();
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      const double c0 = thread_cpu_seconds();
      for (int i = 0; i < iters; ++i) {
        local += worker.cycle();
      }
      cpu_s[static_cast<std::size_t>(w)] = thread_cpu_seconds() - c0;
      sink.fetch_add(local, std::memory_order_relaxed);
      worker.teardown();
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
  }
  go.store(true, std::memory_order_release);
  for (std::thread &w : workers) {
    w.join();
  }
  const double slowest = *std::max_element(cpu_s.begin(), cpu_s.end());
  const double cycles = static_cast<double>(threads) * iters +
                        static_cast<double>(sink.load() & 1);
  return cycles / slowest;
}

double best_throughput(int threads, int iters, int tries) {
  double best = hammer_throughput(threads, iters);
  for (int i = 1; i < tries; ++i) {
    best = std::max(best, hammer_throughput(threads, iters));
  }
  return best;
}

/// Wall-clock ns/call over `iters` calls (bench_abl_overhead's helper).
template <typename Fn>
double wall_ns_per_call(int iters, Fn &&fn) {
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    sink += fn();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() +
      static_cast<double>(sink & 1);
  return ns / iters;
}

} // namespace

int main() {
  tempi::install();
  sysmpi::ensure_self_context();

  std::printf("Ablation — thread-multiple request-engine scaling\n\n");

  const int kIters = bench::smoke_mode() ? 512 : 4096;
  const int kTries = 2;

  // Thread-scaling sweep on the default sharded layout.
  tempi::async::reset_pool_lock_stats();
  const int counts[] = {1, 2, 4, 8};
  double thr[4] = {0, 0, 0, 0};
  std::printf("Isend/Irecv/Waitall + persistent Start hammer "
              "(%d cycles/thread, %zu shards):\n",
              kIters, tempi::async::shard_count());
  for (int i = 0; i < 4; ++i) {
    thr[i] = best_throughput(counts[i], kIters, kTries);
    std::printf("  %d thread%s: %10.0f cycles/cpu-sec\n", counts[i],
                counts[i] == 1 ? " " : "s", thr[i]);
  }
  const double scaling = thr[2] / thr[0];
  const support::LockStats pool = tempi::async::pool_lock_stats();
  std::printf("  4-vs-1 CPU-normalized scaling: %.2fx (gate: >= 3x)\n",
              scaling);
  std::printf("  pool lock: %llu acquires, %llu contended\n\n",
              static_cast<unsigned long long>(pool.acquires),
              static_cast<unsigned long long>(pool.contended));

  // Kill-switch comparison: the same 4-thread hammer on the single-shard
  // layout (TEMPI_SHARDS=1 equivalent). Reported, not gated — on a 1-core
  // host the convoy is partly invisible to CPU time.
  double thr4_shard1 = 0.0;
  const std::size_t default_shards = tempi::async::shard_count();
  if (tempi::async::configure_shards(1)) {
    // Rebuilding the shard array starts fresh mutexes; reset so the stats
    // below cover exactly this run.
    tempi::async::reset_pool_lock_stats();
    thr4_shard1 = best_throughput(4, kIters, kTries);
    const support::LockStats single = tempi::async::pool_lock_stats();
    std::printf("single-shard kill-switch (TEMPI_SHARDS=1), 4 threads:\n");
    std::printf("  %10.0f cycles/cpu-sec (sharded: %10.0f)\n", thr4_shard1,
                thr[2]);
    std::printf("  pool lock: %llu acquires, %llu contended\n\n",
                static_cast<unsigned long long>(single.acquires),
                static_cast<unsigned long long>(single.contended));
    tempi::async::configure_shards(default_shards);
  }

  // Single-thread setup budget: the steady-state send setup must not have
  // paid for its thread-safety. Same closures as bench_abl_overhead —
  // pre-PR map/shared_mutex/tree-walk path vs the table-driven one.
  MPI_Datatype t = bench::make_vector_2d(1024, 16, 32);
  const tempi::Packer *raw = tempi::find_packer_fast(t);
  raw->remember_method(1, 1, tempi::Method::Device);
  const int kSetupIters = bench::smoke_mode() ? 1 << 14 : 1 << 18;

  std::shared_mutex legacy_model_mutex;
  std::atomic<std::size_t> legacy_gauge{0};
  std::map<std::size_t, std::vector<void *>> legacy_free_list;
  void *seed = nullptr;
  vcuda::Malloc(&seed, raw->packed_bytes(1));
  legacy_free_list[raw->packed_bytes(1)].push_back(seed);
  const auto legacy_setup = [&, t] {
    const auto packer = tempi::find_packer(t);
    const std::shared_lock<std::shared_mutex> model_lock(legacy_model_mutex);
    vcuda::this_thread_timeline().advance(tempi::kModelQueryCachedNs);
    const int w = tempi::select_word_size(packer->block());
    const vcuda::LaunchConfig cfg =
        tempi::make_launch_config(packer->block(), w, 1);
    const auto it = legacy_free_list.lower_bound(packer->packed_bytes(1));
    void *wire = it->second.back();
    it->second.pop_back();
    legacy_gauge.fetch_add(1, std::memory_order_relaxed);
    vcuda::this_thread_timeline().advance(120);
    legacy_free_list[it->first].push_back(wire);
    legacy_gauge.fetch_sub(1, std::memory_order_relaxed);
    return static_cast<std::uint64_t>(cfg.block.x) +
           reinterpret_cast<std::uintptr_t>(wire);
  };
  std::atomic<std::uint64_t> model_generation{1};
  const auto table_setup = [&, t] {
    const tempi::Packer *packer = tempi::find_packer_fast(t);
    const std::uint64_t gen = model_generation.load(std::memory_order_acquire);
    const auto method = packer->cached_method(1, gen);
    vcuda::this_thread_timeline().advance(tempi::kMethodMemoHitNs);
    const vcuda::LaunchConfig cfg = tempi::launch_config_for(packer->plan(), 1);
    tempi::CachedBuffer wire =
        tempi::lease_buffer(vcuda::MemorySpace::Device, packer->packed_bytes(1));
    return static_cast<std::uint64_t>(cfg.block.x) +
           static_cast<std::uint64_t>(method.value_or(tempi::Method::Device)) +
           reinterpret_cast<std::uintptr_t>(wire.get());
  };
  const auto best_wall3 = [kSetupIters](const auto &fn) {
    double best = wall_ns_per_call(kSetupIters, fn);
    for (int i = 0; i < 2; ++i) {
      best = std::min(best, wall_ns_per_call(kSetupIters, fn));
    }
    return best;
  };
  const double setup_old1 = best_wall3(legacy_setup);
  const double setup_new1 = best_wall3(table_setup);
  std::printf("single-thread steady-state setup (wall clock):\n");
  std::printf("  pre-PR recompute path: %6.1f ns/call\n", setup_old1);
  std::printf("  table-driven path:     %6.1f ns/call  (gate: no "
              "regression)\n\n",
              setup_new1);
  for (auto &[cap, ptrs] : legacy_free_list) {
    for (void *p : ptrs) {
      vcuda::Free(p);
    }
  }

  bool gates_ok = true;
  [[maybe_unused]] const auto gate = [&gates_ok](bool ok, const char *what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      gates_ok = false;
    }
  };
#ifdef NDEBUG
  // Optimized-build claims only; -O0/sanitizer runs report, not enforce.
  gate(scaling >= 3.0,
       "4-thread CPU-normalized throughput below 3x the 1-thread run");
  gate(setup_new1 <= setup_old1,
       "sharded engine regressed the single-thread setup path");
#endif

  char extra[512];
  std::snprintf(
      extra, sizeof extra,
      "\"contention\": {\"threads\": [1, 2, 4, 8], "
      "\"cycles_per_cpu_sec\": [%.0f, %.0f, %.0f, %.0f], "
      "\"scaling_4v1\": %.3f, \"throughput_4t_shards1\": %.0f, "
      "\"setup_old1_ns\": %.1f, \"setup_new1_ns\": %.1f, "
      "\"pool_acquires\": %llu, \"pool_contended\": %llu}",
      thr[0], thr[1], thr[2], thr[3], scaling, thr4_shard1, setup_old1,
      setup_new1, static_cast<unsigned long long>(pool.acquires),
      static_cast<unsigned long long>(pool.contended));
  bench::emit_json("abl_contention",
                   "1-8 threads, Isend/Irecv/Waitall + persistent Start, "
                   "CPU-time-normalized",
                   scaling, extra);

  MPI_Type_free(&t);
  tempi::uninstall();
  return gates_ok ? 0 : 1;
}
