// Core-operation microbenchmarks on the google-benchmark harness.
//
// Device-side latencies are *virtual* (the calibrated cost model), fed to
// google-benchmark through manual timing; host-side operations (type
// commit, IR canonicalization, model queries) are measured in wall time as
// usual. Run with --benchmark_filter=... to select.
#include "bench_common.hpp"
#include "interpose/table.hpp"
#include "tempi/canonicalize.hpp"
#include "tempi/packer.hpp"
#include "tempi/perf_model.hpp"
#include "tempi/translate.hpp"

#include <benchmark/benchmark.h>

namespace {

// --- virtual-time benches (UseManualTime) -------------------------------------

void BM_DevicePack(benchmark::State &state) {
  sysmpi::ensure_self_context();
  const long long total = state.range(0);
  const long long block = state.range(1);
  tempi::StridedBlock sb;
  sb.counts = {block, total / block};
  sb.strides = {1, 2 * block};
  const tempi::Packer packer(sb, 2 * total, total);
  void *obj = nullptr, *flat = nullptr;
  vcuda::Malloc(&obj, static_cast<std::size_t>(total) * 2);
  vcuda::Malloc(&flat, static_cast<std::size_t>(total));
  for (auto _ : state) {
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    packer.pack(flat, obj, 1, vcuda::default_stream());
    state.SetIterationTime(vcuda::ns_to_s(vcuda::virtual_now() - t0));
  }
  state.SetBytesProcessed(state.iterations() * total);
  vcuda::Free(flat);
  vcuda::Free(obj);
}
BENCHMARK(BM_DevicePack)
    ->ArgsProduct({{64 << 10, 4 << 20}, {1, 8, 128}})
    ->UseManualTime()->Iterations(50);

void BM_OneShotPack(benchmark::State &state) {
  sysmpi::ensure_self_context();
  const long long total = state.range(0);
  const long long block = state.range(1);
  tempi::StridedBlock sb;
  sb.counts = {block, total / block};
  sb.strides = {1, 2 * block};
  const tempi::Packer packer(sb, 2 * total, total);
  void *obj = nullptr, *flat = nullptr;
  vcuda::Malloc(&obj, static_cast<std::size_t>(total) * 2);
  vcuda::MallocHost(&flat, static_cast<std::size_t>(total));
  for (auto _ : state) {
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    packer.pack(flat, obj, 1, vcuda::default_stream());
    state.SetIterationTime(vcuda::ns_to_s(vcuda::virtual_now() - t0));
  }
  state.SetBytesProcessed(state.iterations() * total);
  vcuda::FreeHost(flat);
  vcuda::Free(obj);
}
BENCHMARK(BM_OneShotPack)
    ->ArgsProduct({{64 << 10, 4 << 20}, {8, 32, 128}})
    ->UseManualTime()->Iterations(50);

void BM_BaselinePackPerBlock(benchmark::State &state) {
  sysmpi::ensure_self_context();
  const long long blocks = state.range(0);
  MPI_Datatype t = bench::make_vector_2d(blocks, 4, 8);
  void *src = nullptr, *dst = nullptr;
  vcuda::Malloc(&src, static_cast<std::size_t>(blocks) * 8 + 8);
  vcuda::Malloc(&dst, static_cast<std::size_t>(blocks) * 4);
  for (auto _ : state) {
    int position = 0;
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    MPI_Pack(src, 1, t, dst, static_cast<int>(blocks) * 4, &position,
             MPI_COMM_WORLD);
    state.SetIterationTime(vcuda::ns_to_s(vcuda::virtual_now() - t0));
  }
  state.counters["blocks"] = static_cast<double>(blocks);
  vcuda::Free(dst);
  vcuda::Free(src);
  MPI_Type_free(&t);
}
BENCHMARK(BM_BaselinePackPerBlock)->Arg(64)->Arg(512)->UseManualTime()->Iterations(50);

void BM_MemcpyD2H(benchmark::State &state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  void *dev = nullptr, *host = nullptr;
  vcuda::Malloc(&dev, bytes);
  vcuda::MallocHost(&host, bytes);
  for (auto _ : state) {
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    vcuda::MemcpyAsync(host, dev, bytes, vcuda::MemcpyKind::DeviceToHost,
                       vcuda::default_stream());
    vcuda::StreamSynchronize(vcuda::default_stream());
    state.SetIterationTime(vcuda::ns_to_s(vcuda::virtual_now() - t0));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  vcuda::FreeHost(host);
  vcuda::Free(dev);
}
BENCHMARK(BM_MemcpyD2H)->Range(64, 4 << 20)->UseManualTime()->Iterations(50);

// --- wall-time benches (host-side work) ---------------------------------------

void BM_TypeCommitBaseline(benchmark::State &state) {
  sysmpi::ensure_self_context();
  for (auto _ : state) {
    MPI_Datatype t = nullptr;
    MPI_Type_vector(static_cast<int>(state.range(0)), 16, 64, MPI_FLOAT, &t);
    MPI_Type_commit(&t);
    MPI_Type_free(&t);
  }
}
BENCHMARK(BM_TypeCommitBaseline)->Arg(16)->Arg(256);

void BM_TranslateAndCanonicalize(benchmark::State &state) {
  sysmpi::ensure_self_context();
  MPI_Datatype row = nullptr, plane = nullptr, cuboid = nullptr;
  MPI_Type_vector(1, 100, 1, MPI_FLOAT, &row);
  MPI_Type_create_hvector(13, 1, 512, row, &plane);
  MPI_Type_create_hvector(47, 1, 512 * 512, plane, &cuboid);
  for (auto _ : state) {
    auto ir = tempi::translate(cuboid, interpose::system_table());
    tempi::simplify(*ir);
    benchmark::DoNotOptimize(ir);
  }
  MPI_Type_free(&cuboid);
  MPI_Type_free(&plane);
  MPI_Type_free(&row);
}
BENCHMARK(BM_TranslateAndCanonicalize);

void BM_ModelChoose(benchmark::State &state) {
  const tempi::PerfModel model;
  std::size_t block = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.choose(block, 1 << 20));
    block = block % 512 + 1; // rotate keys: mix of hits and misses
  }
}
BENCHMARK(BM_ModelChoose);

} // namespace

BENCHMARK_MAIN();
