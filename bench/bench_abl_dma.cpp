// Ablation: packing kernels vs the GPU DMA engine (cudaMemcpy2DAsync),
// the strategy of Wang et al. that the paper's future-work section asks
// about. The DMA engine avoids kernel-launch overhead but pays a copy-
// engine start per object and loses row-coalescing efficiency for narrow
// rows.
#include "bench_common.hpp"
#include "tempi/packer.hpp"

#include <cstdio>

namespace {

struct Shape {
  long long total, block;
};

double pack_us(const tempi::Packer &packer, void *dst, const void *src,
               bool dma) {
  support::Sampler s;
  for (int i = 0; i < 5; ++i) {
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    if (dma) {
      packer.pack_dma(dst, src, 1, vcuda::default_stream());
    } else {
      packer.pack(dst, src, 1, vcuda::default_stream());
    }
    s.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
  }
  return s.trimean();
}

} // namespace

int main() {
  sysmpi::ensure_self_context();
  std::printf("Ablation — pack kernel vs GPU DMA engine (cudaMemcpy2D), "
              "device memory, virtual us\n\n");
  std::printf("%10s %8s | %12s %12s %10s\n", "object", "block", "kernel",
              "DMA engine", "winner");

  const Shape shapes[] = {
      {1024, 16},          {1024, 256},
      {64 * 1024, 16},     {64 * 1024, 512},
      {1024 * 1024, 16},   {1024 * 1024, 4096},
      {4 * 1024 * 1024, 64},
  };
  std::vector<double> dma_over_kernel;
  for (const Shape &s : shapes) {
    tempi::StridedBlock sb;
    sb.counts = {s.block, s.total / s.block};
    sb.strides = {1, 2 * s.block};
    const tempi::Packer packer(sb, 2 * s.total, s.total);

    void *obj = nullptr, *flat = nullptr;
    vcuda::Malloc(&obj, static_cast<std::size_t>(s.total) * 2);
    vcuda::Malloc(&flat, static_cast<std::size_t>(s.total));
    const double kernel = pack_us(packer, flat, obj, false);
    const double dma = pack_us(packer, flat, obj, true);
    dma_over_kernel.push_back(dma / kernel);
    std::printf("%10s %7lldB | %12.1f %12.1f %10s\n",
                bench::human_bytes(static_cast<double>(s.total)).c_str(),
                s.block, kernel, dma, kernel <= dma ? "kernel" : "DMA");
    vcuda::Free(flat);
    vcuda::Free(obj);
  }
  std::printf("\nThe kernel wins once objects are large enough to amortize "
              "the launch; TEMPI therefore keeps the kernel path and the "
              "paper leaves the DMA engine as future work.\n");
  bench::emit_json("abl_dma",
                   "2-D objects, pack kernel vs cudaMemcpy2D DMA engine "
                   "(geomean DMA/kernel latency)",
                   support::geomean(dma_over_kernel));
  return 0;
}
