// Fig. 10: pack/unpack latency of the "one-shot" (mapped host) and
// "device" strategies for 64 B - 4 MiB objects with 1-128 B contiguous
// blocks. Reproduction targets: latency falls with block size; one-shot
// saturates near 32 B blocks and device near 128 B; unpack is slower than
// pack; larger objects utilize the GPU better.
#include "bench_common.hpp"
#include "tempi/packer.hpp"

#include <cstdio>
#include <vector>

namespace {

/// Latency of one pack or unpack of a `total`-byte object with `block`-byte
/// runs, with the contiguous side in device or mapped host memory.
double kernel_us(bool oneshot, bool is_pack, long long total,
                 long long block, int iters = 5) {
  tempi::StridedBlock sb;
  const long long blk = std::min(block, total);
  sb.counts = {blk, total / blk};
  sb.strides = {1, 2 * blk};
  const tempi::Packer packer(sb, /*extent=*/2 * total, /*size=*/total);

  void *obj = nullptr;
  vcuda::Malloc(&obj, static_cast<std::size_t>(total) * 2);
  void *flat = nullptr;
  if (oneshot) {
    vcuda::MallocHost(&flat, static_cast<std::size_t>(total));
  } else {
    vcuda::Malloc(&flat, static_cast<std::size_t>(total));
  }

  support::Sampler s;
  for (int i = 0; i < iters; ++i) {
    const vcuda::VirtualNs t0 = vcuda::virtual_now();
    if (is_pack) {
      packer.pack(flat, obj, 1, vcuda::default_stream());
    } else {
      packer.unpack(obj, flat, 1, vcuda::default_stream());
    }
    s.add(vcuda::ns_to_us(vcuda::virtual_now() - t0));
  }
  if (oneshot) {
    vcuda::FreeHost(flat);
  } else {
    vcuda::Free(flat);
  }
  vcuda::Free(obj);
  return s.trimean();
}

void print_panel(const char *title, bool oneshot, bool is_pack) {
  const bool smoke = bench::smoke_mode();
  const std::vector<long long> totals =
      smoke ? std::vector<long long>{64, 64 * 1024}
            : std::vector<long long>{64, 64 * 1024, 256 * 1024, 1024 * 1024,
                                     4 * 1024 * 1024};
  const std::vector<long long> blocks =
      smoke ? std::vector<long long>{1, 16, 128}
            : std::vector<long long>{1, 2, 4, 8, 16, 32, 64, 128};
  std::printf("%s (virtual us)\n", title);
  std::printf("%10s", "block(B)");
  for (const long long t : totals) {
    std::printf(" %9s", bench::human_bytes(static_cast<double>(t)).c_str());
  }
  std::printf("\n");
  for (const long long b : blocks) {
    std::printf("%10lld", b);
    for (const long long t : totals) {
      std::printf(" %9.1f", kernel_us(oneshot, is_pack, t, b));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

} // namespace

int main() {
  sysmpi::ensure_self_context();
  std::printf("Fig. 10 — pack/unpack latency by strategy, object size, and "
              "contiguous block size\n\n");
  print_panel("(a) one-shot pack", true, true);
  print_panel("(b) one-shot unpack", true, false);
  print_panel("(c) device pack", false, true);
  print_panel("(d) device unpack", false, false);
  std::printf("Paper: one-shot maximized at 32 B blocks, device at 128 B; "
              "unpack slower than pack; larger objects faster per byte.\n");
  // Headline: block-size leverage of the device pack — 128 B blocks over
  // 1 B blocks at a 64 KiB object (the Sec. 6.3 coalescing story).
  bench::emit_json("fig10_pack_methods",
                   "device pack, 64KiB object: 1B-block latency over "
                   "128B-block latency",
                   kernel_us(false, true, 64 * 1024, 1) /
                       kernel_us(false, true, 64 * 1024, 128));
  return 0;
}
